"""Queue disciplines for the bottleneck link.

The paper's router used token-bucket + droptail (Sec. 3.2), and droptail
is this simulator's default.  Real bottlenecks increasingly run AQM, and
"how would the QUIC/TCP comparison change under AQM?" is a natural
follow-on question — so the link's queue is pluggable:

* :class:`DropTail` — the paper's discipline: reject when full.
* :class:`RED` — random early detection: probabilistic early drops as the
  EWMA queue occupancy climbs between two thresholds.
* :class:`CoDel` — controlled delay: drop at *dequeue* when packets'
  sojourn times stay above ``target`` for longer than ``interval``,
  with the square-root drop-spacing schedule.
* :class:`FQCoDel` — fair queuing + CoDel: packets are hashed into
  per-flow sub-queues served by deficit round robin with the standard
  sparse-flow (new-flow) priority list, and each sub-queue runs its own
  CoDel drop state.

All four expose the same tiny interface consumed by
:class:`~repro.netem.link.Link`: ``enqueue(now, packet) -> bool``,
``dequeue(now) -> Optional[Packet]``, ``backlog_bytes``.  Drops made at
dequeue time (CoDel/FQCoDel) are reported through ``on_drop``.

Drop-accounting invariant (relied on by link stats and tested across
all disciplines): at the moment ``on_drop`` fires, ``backlog_bytes``
no longer includes the dropped packet, and every dropped packet is
reported through the hook exactly once.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from .packet import Packet

DropHook = Callable[[Packet], None]


class QueueDiscipline:
    """Interface; subclasses manage their own backlog accounting."""

    __slots__ = ("on_drop",)

    def __init__(self) -> None:
        self.on_drop: Optional[DropHook] = None

    def enqueue(self, now: float, packet: Packet) -> bool:  # pragma: no cover
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:  # pragma: no cover
        raise NotImplementedError

    @property
    def backlog_bytes(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def _drop(self, packet: Packet) -> None:
        if self.on_drop is not None:
            self.on_drop(packet)


class DropTail(QueueDiscipline):
    """The classic FIFO: accept until the byte limit, then tail-drop."""

    __slots__ = ("limit_bytes", "_queue", "_bytes")

    def __init__(self, limit_bytes: Optional[int]) -> None:
        super().__init__()
        self.limit_bytes = limit_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0

    def enqueue(self, now: float, packet: Packet) -> bool:
        if (self.limit_bytes is not None
                and self._bytes + packet.size_bytes > self.limit_bytes):
            self._drop(packet)
            return False
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return packet

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


class RED(QueueDiscipline):
    """Random Early Detection (byte mode, EWMA average occupancy)."""

    __slots__ = ("limit_bytes", "min_threshold", "max_threshold",
                 "max_probability", "weight", "rng", "_queue", "_bytes",
                 "_avg", "early_drops")

    def __init__(self, limit_bytes: int, *, min_threshold: Optional[int] = None,
                 max_threshold: Optional[int] = None, max_probability: float = 0.1,
                 weight: float = 0.2, rng: Optional[random.Random] = None) -> None:
        super().__init__()
        if limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        self.limit_bytes = limit_bytes
        self.min_threshold = (min_threshold if min_threshold is not None
                              else limit_bytes // 4)
        self.max_threshold = (max_threshold if max_threshold is not None
                              else limit_bytes // 2)
        if not 0 < self.min_threshold < self.max_threshold <= limit_bytes:
            raise ValueError("need 0 < min_th < max_th <= limit")
        self.max_probability = max_probability
        self.weight = weight
        self.rng = rng if rng is not None else random.Random(0)
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self._avg = 0.0
        self.early_drops = 0

    def enqueue(self, now: float, packet: Packet) -> bool:
        self._avg = (1 - self.weight) * self._avg + self.weight * self._bytes
        if self._bytes + packet.size_bytes > self.limit_bytes:
            self._drop(packet)
            return False
        if self._avg >= self.max_threshold:
            self.early_drops += 1
            self._drop(packet)
            return False
        if self._avg > self.min_threshold:
            fraction = ((self._avg - self.min_threshold)
                        / (self.max_threshold - self.min_threshold))
            if self.rng.random() < fraction * self.max_probability:
                self.early_drops += 1
                self._drop(packet)
                return False
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return packet

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


class CoDel(QueueDiscipline):
    """Controlled Delay AQM (RFC 8289, simplified).

    Packets carry their enqueue time; at dequeue, if every packet's
    sojourn has exceeded ``target`` for at least ``interval``, packets
    are dropped with the 1/sqrt(count) spacing schedule until sojourn
    falls back under target.
    """

    __slots__ = ("target", "interval", "limit_bytes", "_queue", "_bytes",
                 "_first_above", "_dropping", "_drop_next", "_drop_count",
                 "codel_drops")

    def __init__(self, target: float = 0.005, interval: float = 0.100,
                 limit_bytes: Optional[int] = 10_000_000) -> None:
        super().__init__()
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.limit_bytes = limit_bytes
        self._queue: Deque[Tuple[float, Packet]] = deque()
        self._bytes = 0
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.codel_drops = 0

    def enqueue(self, now: float, packet: Packet) -> bool:
        if (self.limit_bytes is not None
                and self._bytes + packet.size_bytes > self.limit_bytes):
            self._drop(packet)
            return False
        self._queue.append((now, packet))
        self._bytes += packet.size_bytes
        return True

    def _pop(self) -> Tuple[float, Packet]:
        entered, packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return entered, packet

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._queue:
            entered, packet = self._pop()
            sojourn = now - entered
            if sojourn < self.target or not self._queue:
                # Below target (or queue nearly empty): leave drop state.
                self._first_above = None
                if sojourn < self.target:
                    self._dropping = False
                return packet
            if self._first_above is None:
                self._first_above = now + self.interval
                return packet
            if not self._dropping:
                if now >= self._first_above:
                    # Sojourn has been above target for a full interval.
                    self._dropping = True
                    self._drop_count = max(self._drop_count - 2, 1)
                    self._drop_next = now + self.interval / math.sqrt(
                        self._drop_count)
                    self.codel_drops += 1
                    self._drop(packet)
                    continue
                return packet
            if now >= self._drop_next:
                self._drop_count += 1
                self._drop_next = now + self.interval / math.sqrt(
                    self._drop_count)
                self.codel_drops += 1
                self._drop(packet)
                continue
            return packet
        return None

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


class _FlowQueue:
    """One FQ-CoDel sub-queue: a FIFO plus its own CoDel drop state."""

    __slots__ = ("queue", "bytes", "deficit", "active",
                 "first_above", "dropping", "drop_next", "drop_count")

    def __init__(self) -> None:
        self.queue: Deque[Tuple[float, Packet]] = deque()
        self.bytes = 0
        self.deficit = 0
        self.active = False
        self.first_above: Optional[float] = None
        self.dropping = False
        self.drop_next = 0.0
        self.drop_count = 0


class FQCoDel(QueueDiscipline):
    """Fair queuing with per-flow CoDel (RFC 8290, simplified).

    Packets are hashed by ``flow_id`` (stable crc32, never Python's
    randomised ``hash``) into one of ``flows`` sub-queues.  Sub-queues
    are served by deficit round robin: a flow that becomes active
    joins the *new* (sparse-flow) list and is served ahead of the *old*
    list until it uses up one quantum, which is what gives short flows
    their latency advantage.  Each sub-queue runs the CoDel control law
    of :class:`CoDel` independently.  On overflow the head packet of
    the fattest sub-queue is dropped (not the arriving packet), as in
    the Linux qdisc.
    """

    __slots__ = ("target", "interval", "quantum", "limit_bytes", "flows",
                 "_queues", "_new", "_old", "_bytes",
                 "codel_drops", "overflow_drops")

    def __init__(self, target: float = 0.005, interval: float = 0.100,
                 quantum: int = 1514, limit_bytes: Optional[int] = 10_000_000,
                 flows: int = 1024) -> None:
        super().__init__()
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        if quantum <= 0 or flows <= 0:
            raise ValueError("quantum and flows must be positive")
        self.target = target
        self.interval = interval
        self.quantum = quantum
        self.limit_bytes = limit_bytes
        self.flows = flows
        self._queues: Dict[int, _FlowQueue] = {}
        self._new: Deque[_FlowQueue] = deque()
        self._old: Deque[_FlowQueue] = deque()
        self._bytes = 0
        self.codel_drops = 0
        self.overflow_drops = 0

    def _bucket(self, packet: Packet) -> _FlowQueue:
        key = str(packet.flow_id).encode("utf-8", "replace")
        idx = zlib.crc32(key) % self.flows
        fq = self._queues.get(idx)
        if fq is None:
            fq = _FlowQueue()
            self._queues[idx] = fq
        return fq

    def _drop_from_fattest(self) -> bool:
        """Head-drop one packet from the longest sub-queue."""
        fattest: Optional[_FlowQueue] = None
        for fq in self._queues.values():
            if fq.bytes > 0 and (fattest is None or fq.bytes > fattest.bytes):
                fattest = fq
        if fattest is None:
            return False
        _, victim = fattest.queue.popleft()
        fattest.bytes -= victim.size_bytes
        self._bytes -= victim.size_bytes
        self.overflow_drops += 1
        self._drop(victim)
        return True

    def enqueue(self, now: float, packet: Packet) -> bool:
        if self.limit_bytes is not None:
            while self._bytes + packet.size_bytes > self.limit_bytes:
                if not self._drop_from_fattest():
                    # Nothing queued and the packet alone exceeds the
                    # limit: reject the arrival itself.
                    self._drop(packet)
                    return False
        fq = self._bucket(packet)
        fq.queue.append((now, packet))
        fq.bytes += packet.size_bytes
        self._bytes += packet.size_bytes
        if not fq.active:
            fq.active = True
            fq.deficit = self.quantum
            self._new.append(fq)
        return True

    def _codel_pop(self, fq: _FlowQueue, now: float) -> Optional[Packet]:
        """CoDel control law on one sub-queue (mirrors CoDel.dequeue)."""
        while fq.queue:
            entered, packet = fq.queue.popleft()
            fq.bytes -= packet.size_bytes
            self._bytes -= packet.size_bytes
            sojourn = now - entered
            if sojourn < self.target or not fq.queue:
                fq.first_above = None
                if sojourn < self.target:
                    fq.dropping = False
                return packet
            if fq.first_above is None:
                fq.first_above = now + self.interval
                return packet
            if not fq.dropping:
                if now >= fq.first_above:
                    fq.dropping = True
                    fq.drop_count = max(fq.drop_count - 2, 1)
                    fq.drop_next = now + self.interval / math.sqrt(
                        fq.drop_count)
                    self.codel_drops += 1
                    self._drop(packet)
                    continue
                return packet
            if now >= fq.drop_next:
                fq.drop_count += 1
                fq.drop_next = now + self.interval / math.sqrt(
                    fq.drop_count)
                self.codel_drops += 1
                self._drop(packet)
                continue
            return packet
        return None

    def dequeue(self, now: float) -> Optional[Packet]:
        while True:
            if self._new:
                head_list, is_new = self._new, True
            elif self._old:
                head_list, is_new = self._old, False
            else:
                return None
            fq = head_list[0]
            if fq.deficit <= 0:
                fq.deficit += self.quantum
                head_list.popleft()
                self._old.append(fq)
                continue
            packet = self._codel_pop(fq, now)
            if packet is None:
                # Sub-queue ran dry: a new flow gets one more round on
                # the old list; an old flow goes inactive.
                head_list.popleft()
                if is_new:
                    self._old.append(fq)
                else:
                    fq.active = False
                continue
            fq.deficit -= packet.size_bytes
            return packet

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


#: AQM labels accepted by :func:`make_queue` (and ``Scenario``-level
#: configuration that funnels into it).
AQM_NAMES = ("droptail", "red", "codel", "fq_codel")


def make_queue(aqm: str, queue_bytes: Optional[int], *,
               rng: Optional[random.Random] = None) -> QueueDiscipline:
    """Build the queue discipline named by an AQM label.

    ``queue_bytes`` becomes the discipline's hard byte limit; ``rng``
    only matters for RED's probabilistic early drops (defaults to a
    fixed seed for determinism).
    """
    name = (aqm or "droptail").lower().replace("-", "_")
    if name in ("droptail", "fifo", "tail"):
        return DropTail(queue_bytes)
    if name == "red":
        if queue_bytes is None:
            raise ValueError("RED needs a finite queue_bytes limit")
        return RED(queue_bytes, rng=rng)
    if name == "codel":
        return CoDel(limit_bytes=queue_bytes)
    if name in ("fq_codel", "fqcodel"):
        return FQCoDel(limit_bytes=queue_bytes)
    raise ValueError(
        f"unknown AQM {aqm!r}; expected one of {', '.join(AQM_NAMES)}")

"""Queue disciplines for the bottleneck link.

The paper's router used token-bucket + droptail (Sec. 3.2), and droptail
is this simulator's default.  Real bottlenecks increasingly run AQM, and
"how would the QUIC/TCP comparison change under AQM?" is a natural
follow-on question — so the link's queue is pluggable:

* :class:`DropTail` — the paper's discipline: reject when full.
* :class:`RED` — random early detection: probabilistic early drops as the
  EWMA queue occupancy climbs between two thresholds.
* :class:`CoDel` — controlled delay: drop at *dequeue* when packets'
  sojourn times stay above ``target`` for longer than ``interval``,
  with the square-root drop-spacing schedule.

All three expose the same tiny interface consumed by
:class:`~repro.netem.link.Link`: ``enqueue(now, packet) -> bool``,
``dequeue(now) -> Optional[Packet]``, ``backlog_bytes``.  Drops made at
dequeue time (CoDel) are reported through ``on_drop``.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from .packet import Packet

DropHook = Callable[[Packet], None]


class QueueDiscipline:
    """Interface; subclasses manage their own backlog accounting."""

    __slots__ = ("on_drop",)

    def __init__(self) -> None:
        self.on_drop: Optional[DropHook] = None

    def enqueue(self, now: float, packet: Packet) -> bool:  # pragma: no cover
        raise NotImplementedError

    def dequeue(self, now: float) -> Optional[Packet]:  # pragma: no cover
        raise NotImplementedError

    @property
    def backlog_bytes(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def _drop(self, packet: Packet) -> None:
        if self.on_drop is not None:
            self.on_drop(packet)


class DropTail(QueueDiscipline):
    """The classic FIFO: accept until the byte limit, then tail-drop."""

    __slots__ = ("limit_bytes", "_queue", "_bytes")

    def __init__(self, limit_bytes: Optional[int]) -> None:
        super().__init__()
        self.limit_bytes = limit_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0

    def enqueue(self, now: float, packet: Packet) -> bool:
        if (self.limit_bytes is not None
                and self._bytes + packet.size_bytes > self.limit_bytes):
            self._drop(packet)
            return False
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return packet

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


class RED(QueueDiscipline):
    """Random Early Detection (byte mode, EWMA average occupancy)."""

    __slots__ = ("limit_bytes", "min_threshold", "max_threshold",
                 "max_probability", "weight", "rng", "_queue", "_bytes",
                 "_avg", "early_drops")

    def __init__(self, limit_bytes: int, *, min_threshold: Optional[int] = None,
                 max_threshold: Optional[int] = None, max_probability: float = 0.1,
                 weight: float = 0.2, rng: Optional[random.Random] = None) -> None:
        super().__init__()
        if limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        self.limit_bytes = limit_bytes
        self.min_threshold = (min_threshold if min_threshold is not None
                              else limit_bytes // 4)
        self.max_threshold = (max_threshold if max_threshold is not None
                              else limit_bytes // 2)
        if not 0 < self.min_threshold < self.max_threshold <= limit_bytes:
            raise ValueError("need 0 < min_th < max_th <= limit")
        self.max_probability = max_probability
        self.weight = weight
        self.rng = rng if rng is not None else random.Random(0)
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self._avg = 0.0
        self.early_drops = 0

    def enqueue(self, now: float, packet: Packet) -> bool:
        self._avg = (1 - self.weight) * self._avg + self.weight * self._bytes
        if self._bytes + packet.size_bytes > self.limit_bytes:
            self._drop(packet)
            return False
        if self._avg >= self.max_threshold:
            self.early_drops += 1
            self._drop(packet)
            return False
        if self._avg > self.min_threshold:
            fraction = ((self._avg - self.min_threshold)
                        / (self.max_threshold - self.min_threshold))
            if self.rng.random() < fraction * self.max_probability:
                self.early_drops += 1
                self._drop(packet)
                return False
        self._queue.append(packet)
        self._bytes += packet.size_bytes
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return packet

    @property
    def backlog_bytes(self) -> int:
        return self._bytes


class CoDel(QueueDiscipline):
    """Controlled Delay AQM (RFC 8289, simplified).

    Packets carry their enqueue time; at dequeue, if every packet's
    sojourn has exceeded ``target`` for at least ``interval``, packets
    are dropped with the 1/sqrt(count) spacing schedule until sojourn
    falls back under target.
    """

    __slots__ = ("target", "interval", "limit_bytes", "_queue", "_bytes",
                 "_first_above", "_dropping", "_drop_next", "_drop_count",
                 "codel_drops")

    def __init__(self, target: float = 0.005, interval: float = 0.100,
                 limit_bytes: Optional[int] = 10_000_000) -> None:
        super().__init__()
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.limit_bytes = limit_bytes
        self._queue: Deque[Tuple[float, Packet]] = deque()
        self._bytes = 0
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.codel_drops = 0

    def enqueue(self, now: float, packet: Packet) -> bool:
        if (self.limit_bytes is not None
                and self._bytes + packet.size_bytes > self.limit_bytes):
            self._drop(packet)
            return False
        self._queue.append((now, packet))
        self._bytes += packet.size_bytes
        return True

    def _pop(self) -> Tuple[float, Packet]:
        entered, packet = self._queue.popleft()
        self._bytes -= packet.size_bytes
        return entered, packet

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._queue:
            entered, packet = self._pop()
            sojourn = now - entered
            if sojourn < self.target or not self._queue:
                # Below target (or queue nearly empty): leave drop state.
                self._first_above = None
                if sojourn < self.target:
                    self._dropping = False
                return packet
            if self._first_above is None:
                self._first_above = now + self.interval
                return packet
            if not self._dropping:
                if now >= self._first_above:
                    # Sojourn has been above target for a full interval.
                    self._dropping = True
                    self._drop_count = max(self._drop_count - 2, 1)
                    self._drop_next = now + self.interval / math.sqrt(
                        self._drop_count)
                    self.codel_drops += 1
                    self._drop(packet)
                    continue
                return packet
            if now >= self._drop_next:
                self._drop_count += 1
                self._drop_next = now + self.interval / math.sqrt(
                    self._drop_count)
                self.codel_drops += 1
                self._drop(packet)
                continue
            return packet
        return None

    @property
    def backlog_bytes(self) -> int:
        return self._bytes

"""Trace-driven bandwidth emulation (mahimahi-style).

Das's thesis [20] — one of the prior studies the paper extends — replayed
web pages over mahimahi, which drives link capacity from a *packet
delivery trace*: a list of millisecond timestamps, each granting one
MTU-sized delivery opportunity.  This module brings the same capability
to the simulator, complementing :class:`~repro.netem.link.BandwidthSchedule`
(which redraws a token-bucket rate) with empirically-shaped capacity:

* :class:`BandwidthTrace` — the timestamp list plus conversions to/from
  per-interval rates; loops when the trace is shorter than the run.
* :func:`saw_tooth_trace`, :func:`lte_like_trace` — synthetic generators
  standing in for the cellular traces shipped with mahimahi (which are
  proprietary captures we cannot redistribute; the LTE generator matches
  their coarse statistics: mean rate, burstiness, outage gaps).
* :class:`TraceDrivenLink` driver — applies the trace to a
  :class:`~repro.netem.link.Link` by re-setting its rate each interval.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .link import Link
from .sim import Simulator

#: Bytes granted per delivery opportunity (mahimahi uses one 1500 B MTU).
MTU_BYTES = 1500


@dataclass
class BandwidthTrace:
    """A capacity trace: per-interval achievable rates in bits/second."""

    interval: float
    rates_bps: List[float]

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not self.rates_bps:
            raise ValueError("trace must contain at least one interval")
        if any(rate < 0 for rate in self.rates_bps):
            raise ValueError("rates must be non-negative")

    @property
    def duration(self) -> float:
        return self.interval * len(self.rates_bps)

    def mean_rate_bps(self) -> float:
        return sum(self.rates_bps) / len(self.rates_bps)

    def rate_at(self, time: float) -> float:
        """Rate in effect at ``time`` (the trace loops)."""
        index = int(time / self.interval) % len(self.rates_bps)
        return self.rates_bps[index]

    @classmethod
    def from_delivery_timestamps(cls, timestamps_ms: Sequence[int],
                                 interval: float = 0.1) -> "BandwidthTrace":
        """Build from a mahimahi-format list of delivery timestamps (ms).

        Each timestamp grants one MTU; the per-interval rate is the MTU
        count in the interval divided by its length.
        """
        if not timestamps_ms:
            raise ValueError("empty delivery trace")
        horizon = max(timestamps_ms) / 1000.0
        buckets = max(int(math.ceil(horizon / interval)), 1)
        counts = [0] * buckets
        for ts in timestamps_ms:
            index = min(int(ts / 1000.0 / interval), buckets - 1)
            counts[index] += 1
        rates = [count * MTU_BYTES * 8 / interval for count in counts]
        return cls(interval, rates)

    def to_delivery_timestamps(self) -> List[int]:
        """Export back to mahimahi's format (millisecond grants)."""
        out: List[int] = []
        for i, rate in enumerate(self.rates_bps):
            grants = int(rate * self.interval / 8 / MTU_BYTES)
            start_ms = i * self.interval * 1000
            for g in range(grants):
                out.append(int(start_ms + g * (self.interval * 1000 / max(grants, 1))))
        return out


def saw_tooth_trace(low_mbps: float, high_mbps: float, period: float = 2.0,
                    duration: float = 60.0, interval: float = 0.1) -> BandwidthTrace:
    """Deterministic ramp between two rates — a worst case for trackers."""
    if low_mbps <= 0 or high_mbps < low_mbps:
        raise ValueError("need 0 < low <= high")
    rates = []
    steps = int(duration / interval)
    for i in range(steps):
        phase = (i * interval % period) / period
        rates.append((low_mbps + (high_mbps - low_mbps) * phase) * 1e6)
    return BandwidthTrace(interval, rates)


def lte_like_trace(mean_mbps: float = 8.0, duration: float = 60.0,
                   interval: float = 0.1, outage_prob: float = 0.01,
                   seed: int = 0) -> BandwidthTrace:
    """A synthetic LTE-ish trace: log-normal rate bursts + rare outages.

    Matches the coarse statistics of mahimahi's Verizon LTE capture:
    heavy-tailed instantaneous rates around the mean and occasional
    sub-second outages (handovers / scheduler gaps).
    """
    rng = random.Random(seed)
    sigma = 0.6
    mu = math.log(mean_mbps) - sigma * sigma / 2
    rates: List[float] = []
    steps = int(duration / interval)
    outage_left = 0
    for _ in range(steps):
        if outage_left > 0:
            rates.append(0.0)
            outage_left -= 1
            continue
        if rng.random() < outage_prob:
            outage_left = rng.randint(1, 5)
            rates.append(0.0)
            continue
        rates.append(rng.lognormvariate(mu, sigma) * 1e6)
    return BandwidthTrace(interval, rates)


class TraceDrivenLink:
    """Drives a link's rate from a :class:`BandwidthTrace`.

    Zero-rate intervals are modelled as a tiny epsilon rate (the link is
    stalled, packets queue) rather than ``None`` (which would mean
    *infinite* rate).
    """

    EPSILON_BPS = 1000.0

    def __init__(self, sim: Simulator, links: List[Link],
                 trace: BandwidthTrace) -> None:
        self.sim = sim
        self.links = links
        self.trace = trace
        self._step = 0
        self._stopped = False
        self.applied: List[float] = []

    def start(self) -> None:
        self._tick()

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        rate = self.trace.rates_bps[self._step % len(self.trace.rates_bps)]
        effective = max(rate, self.EPSILON_BPS)
        for link in self.links:
            link.set_rate(effective)
        self.applied.append(effective)
        self._step += 1
        self.sim.schedule(self.trace.interval, self._tick)

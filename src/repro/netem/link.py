"""Emulated links: rate limiting, queueing, delay, jitter, loss, reordering.

This module reimplements the subset of Linux ``tc``/``netem`` behaviour the
paper's router used (Sec. 3.2 of the paper):

* **Token-bucket rate limiting (TBF)** — modelled as a serialising
  transmitter: the link is busy for ``size * 8 / rate`` seconds per packet
  and excess packets wait in a finite droptail queue.  This is equivalent
  to a TBF whose bucket is one MTU, which is the regime the paper
  calibrated its queue/bucket sizes to (flows achieve close to the cap
  without huge bursts).
* **Droptail buffer** — ``queue_bytes`` bounds the backlog; the 30 KB
  buffer of the fairness experiments (Table 4) is this knob.
* **netem delay + jitter** — every packet independently receives
  ``delay ± U(0, jitter)`` of propagation latency and is delivered at its
  own computed arrival time.  Exactly like ``netem``, this *re-orders*
  packets when jitter exceeds packet spacing — the behaviour behind the
  paper's Fig. 10 finding that QUIC melts down under reordering.
* **Bernoulli loss** — i.i.d. drops with probability ``loss_rate``,
  applied at the egress of the queue (as ``netem`` does on the router,
  deliberately *not* at the endpoint; see Sec. 3.2's pitfall discussion).
* **Explicit reordering** — ``reorder_prob`` holds a packet back by
  ``reorder_extra`` seconds, matching the measured reordering rates of the
  cellular networks in Table 5.
* **Variable bandwidth** — :class:`BandwidthSchedule` re-draws the rate on
  a fixed period within a range (Fig. 11's 50–150 Mbps fluctuation).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from .packet import Packet
from .sim import Simulator

Receiver = Callable[[Packet], None]

#: How many uniform draws a link pre-draws from its RNG at a time.  The
#: draws are consumed strictly in order, so the stream of values any
#: packet sees is bit-identical to calling ``rng.random()`` per draw —
#: batching only amortises the attribute lookups and method-call setup.
RAND_BATCH = 256


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second (readability helper)."""
    return value * 1_000_000.0


class LinkStats:
    """Byte/packet counters maintained by every :class:`Link`."""

    __slots__ = (
        "enqueued_packets",
        "enqueued_bytes",
        "dropped_packets",
        "dropped_bytes",
        "lost_packets",
        "delivered_packets",
        "delivered_bytes",
        "reordered_packets",
    )

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dropped_packets = 0  # droptail (queue overflow)
        self.dropped_bytes = 0
        self.lost_packets = 0  # random (netem) loss
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.reordered_packets = 0  # delivered out of enqueue order

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class Link:
    """A unidirectional emulated link.

    Parameters
    ----------
    sim:
        The event loop.
    rate_bps:
        Serialisation rate in bits/second (use :func:`mbps`).
        ``None`` means infinite rate (no serialisation delay, no queue).
    delay:
        One-way propagation delay in seconds.
    jitter:
        netem-style jitter: each packet's delay is drawn uniformly from
        ``[delay - jitter, delay + jitter]`` (floored at 0).  Non-zero
        jitter causes packet reordering, as in the paper's testbed.
    loss_rate:
        i.i.d. drop probability in [0, 1).
    queue_bytes:
        Droptail buffer size in bytes; ``None`` means unbounded.
    queue:
        Alternative queue discipline (e.g. :class:`~repro.netem.queues.RED`
        or :class:`~repro.netem.queues.CoDel`); overrides ``queue_bytes``.
    reorder_prob / reorder_extra:
        With probability ``reorder_prob`` a packet is additionally delayed
        by ``reorder_extra`` seconds, modelling measured cellular
        reordering (Table 5).
    rng:
        Private random stream (determinism).
    name:
        For debugging and monitor output.
    """

    __slots__ = (
        "sim", "rate_bps", "delay", "jitter", "loss_rate", "queue_bytes",
        "reorder_prob", "reorder_extra", "name", "stats", "_receiver",
        "_queue", "_busy", "_force_drops", "_enqueue_seq",
        "_last_delivered_seq", "on_deliver", "on_send",
        "_rng", "_rand_batch", "_rand_idx",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float],
        delay: float,
        *,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        queue_bytes: Optional[int] = None,
        queue: Optional["QueueDiscipline"] = None,
        reorder_prob: float = 0.0,
        reorder_extra: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
    ) -> None:
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive or None")
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= reorder_prob <= 1.0:
            raise ValueError("reorder_prob must be in [0, 1]")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.queue_bytes = queue_bytes
        self.reorder_prob = reorder_prob
        self.reorder_extra = reorder_extra
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name
        self.stats = LinkStats()
        self._receiver: Optional[Receiver] = None
        if queue is not None:
            self._queue = queue
        else:
            from .queues import DropTail

            self._queue = DropTail(queue_bytes)
        self._queue.on_drop = self._count_drop
        self._busy = False
        #: Deterministic drop injection for experiments/tests: the next
        #: ``n`` packets offered to the wire are discarded.
        self._force_drops = 0
        #: Monotone counter of enqueue order, used to detect reordering.
        self._enqueue_seq = 0
        self._last_delivered_seq = 0
        #: Optional tap invoked on every delivery: f(time, packet).
        self.on_deliver: Optional[Callable[[float, Packet], None]] = None
        #: Optional tap invoked on every offered packet: f(packet).  Used
        #: by :class:`~repro.netem.capture.PacketCapture`; the official
        #: hook replaces the old pattern of monkeypatching ``link.send``.
        self.on_send: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # randomness (batched draws, bit-identical to per-call rng.random())
    # ------------------------------------------------------------------
    @property
    def rng(self) -> random.Random:
        return self._rng

    @rng.setter
    def rng(self, value: random.Random) -> None:
        # Topology builders assign link.rng after construction; any
        # pre-drawn batch belongs to the old stream and must be discarded.
        self._rng = value
        self._rand_batch: list = []
        self._rand_idx = 0

    def _draw(self) -> float:
        """Next uniform [0,1) value from the link's private stream."""
        idx = self._rand_idx
        batch = self._rand_batch
        if idx >= len(batch):
            rand = self._rng.random
            batch = [rand() for _ in range(RAND_BATCH)]
            self._rand_batch = batch
            idx = 0
        self._rand_idx = idx + 1
        return batch[idx]

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, receiver: Receiver) -> None:
        """Connect the far end of the link."""
        self._receiver = receiver

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Offer a packet to the link (called by the upstream node)."""
        if self._receiver is None:
            raise RuntimeError(f"{self.name}: no receiver attached")
        if self.on_send is not None:
            self.on_send(packet)
        now = self.sim._now
        packet.enqueued_at = now
        stats = self.stats
        if self.rate_bps is None:
            # Infinite-rate link: skip the queue entirely.
            stats.enqueued_packets += 1
            stats.enqueued_bytes += packet.size_bytes
            self._launch(packet)
            return
        if not self._queue.enqueue(now, packet):
            return
        stats.enqueued_packets += 1
        stats.enqueued_bytes += packet.size_bytes
        if not self._busy:
            self._transmit_next()

    def _count_drop(self, packet: Packet) -> None:
        self.stats.dropped_packets += 1
        self.stats.dropped_bytes += packet.size_bytes

    def _transmit_next(self) -> None:
        packet = self._queue.dequeue(self.sim._now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = packet.size_bytes * 8.0 / self.rate_bps
        self.sim.post(tx_time, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        self._launch(packet)
        self._transmit_next()

    def drop_next(self, n: int = 1) -> None:
        """Deterministically drop the next ``n`` packets (tail-loss tests)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._force_drops += n

    def _launch(self, packet: Packet) -> None:
        """Apply loss / delay / jitter / reordering and schedule delivery."""
        if self._force_drops > 0:
            self._force_drops -= 1
            self.stats.lost_packets += 1
            return
        if self.loss_rate > 0.0 and self._draw() < self.loss_rate:
            self.stats.lost_packets += 1
            return
        latency = self.delay
        jitter = self.jitter
        if jitter > 0.0:
            # Exactly random.Random.uniform(-jitter, jitter), fed from
            # the batched stream: a + (b - a) * random().
            latency += -jitter + (jitter - -jitter) * self._draw()
            if latency < 0.0:
                latency = 0.0
        if self.reorder_prob > 0.0 and self._draw() < self.reorder_prob:
            latency += self.reorder_extra
        seq = self._enqueue_seq + 1
        self._enqueue_seq = seq
        packet.link_seq = seq
        self.sim.post(latency, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        stats = self.stats
        stats.delivered_packets += 1
        stats.delivered_bytes += packet.size_bytes
        seq = packet.link_seq
        if seq < self._last_delivered_seq:
            stats.reordered_packets += 1
        else:
            self._last_delivered_seq = seq
        if self.on_deliver is not None:
            self.on_deliver(self.sim._now, packet)
        self._receiver(packet)

    # ------------------------------------------------------------------
    # runtime reconfiguration
    # ------------------------------------------------------------------
    def set_rate(self, rate_bps: Optional[float]) -> None:
        """Change the link rate; takes effect for the next transmission."""
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive or None")
        was_infinite = self.rate_bps is None
        self.rate_bps = rate_bps
        if (was_infinite and rate_bps is not None and not self._busy
                and self._queue.backlog_bytes > 0):
            self._transmit_next()

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting in the queue discipline."""
        return self._queue.backlog_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = "inf" if self.rate_bps is None else f"{self.rate_bps / 1e6:.1f}Mbps"
        return (f"<Link {self.name} {rate} {self.delay * 1000:.1f}ms "
                f"q={self.backlog_bytes}B>")


class BandwidthSchedule:
    """Fluctuates a link's rate, as in Fig. 11.

    Every ``period`` seconds the rate is redrawn uniformly at random from
    ``[low_bps, high_bps]``.  The schedule keeps a history of
    ``(time, rate_bps)`` samples for plotting/verification.
    """

    def __init__(
        self,
        sim: Simulator,
        links: List[Link],
        low_bps: float,
        high_bps: float,
        period: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if low_bps <= 0 or high_bps < low_bps:
            raise ValueError("need 0 < low_bps <= high_bps")
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.links = links
        self.low_bps = low_bps
        self.high_bps = high_bps
        self.period = period
        self.rng = rng if rng is not None else random.Random(0)
        self.history: List[Tuple[float, float]] = []
        self._event = None
        self._stopped = False

    def start(self) -> None:
        """Apply an initial draw immediately and re-draw every period."""
        self._tick()

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    def _tick(self) -> None:
        if self._stopped:
            return
        rate = self.rng.uniform(self.low_bps, self.high_bps)
        for link in self.links:
            link.set_rate(rate)
        self.history.append((self.sim.now, rate))
        self._event = self.sim.schedule(self.period, self._tick)

"""Packets as they travel through the emulated network.

The network layer is deliberately thin: a packet is an addressed, sized
envelope around an opaque transport payload.  Links and routers only look
at ``size_bytes``, ``src`` and ``dst``; everything else is the transport's
business (mirroring how the paper's `tc`/`netem` router shaped QUIC's UDP
datagrams and TCP's segments without understanding either).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: Transport payload bytes per packet.  We use one MTU-ish payload size for
#: both protocols so that packet-count comparisons between QUIC and TCP are
#: apples-to-apples (QUIC's real-world 1350-byte UDP payload).
DEFAULT_MSS = 1350

#: Fixed per-packet header overhead charged on the wire (IP+UDP+QUIC or
#: IP+TCP; the small difference between the two is irrelevant at the
#: granularity of the paper's experiments).
HEADER_BYTES = 40

_packet_ids = itertools.count(1)


class Packet:
    """One network-layer packet.

    A hand-rolled ``__slots__`` class rather than a dataclass: packets are
    the most-allocated object in any run, and the dataclass machinery
    (``__init__`` indirection, per-instance ``__dict__``, default-factory
    calls) is measurable at that volume.

    Attributes
    ----------
    src, dst:
        Host addresses (opaque strings) used by routers for forwarding.
    size_bytes:
        Wire size including headers; this is what token buckets charge.
    payload:
        The transport-layer message (a QUIC packet, a TCP segment, ...).
        The network never inspects it.
    flow_id:
        Optional label for per-flow accounting in shared-bottleneck
        experiments (Table 4 / Fig. 4).
    """

    __slots__ = ("src", "dst", "size_bytes", "payload", "flow_id",
                 "packet_id", "enqueued_at", "link_seq")

    def __init__(self, src: str, dst: str, size_bytes: int,
                 payload: Any = None, flow_id: Optional[str] = None,
                 packet_id: Optional[int] = None,
                 enqueued_at: Optional[float] = None) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.payload = payload
        self.flow_id = flow_id
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        #: Stamped by the first link the packet enters; used for
        #: one-way-delay accounting and debugging.
        self.enqueued_at = enqueued_at
        #: Per-link enqueue-order stamp (see Link._launch); replaces the
        #: per-packet dict the link used to keep for reorder detection.
        self.link_seq = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B flow={self.flow_id}>"
        )

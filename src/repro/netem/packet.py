"""Packets as they travel through the emulated network.

The network layer is deliberately thin: a packet is an addressed, sized
envelope around an opaque transport payload.  Links and routers only look
at ``size_bytes``, ``src`` and ``dst``; everything else is the transport's
business (mirroring how the paper's `tc`/`netem` router shaped QUIC's UDP
datagrams and TCP's segments without understanding either).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Transport payload bytes per packet.  We use one MTU-ish payload size for
#: both protocols so that packet-count comparisons between QUIC and TCP are
#: apples-to-apples (QUIC's real-world 1350-byte UDP payload).
DEFAULT_MSS = 1350

#: Fixed per-packet header overhead charged on the wire (IP+UDP+QUIC or
#: IP+TCP; the small difference between the two is irrelevant at the
#: granularity of the paper's experiments).
HEADER_BYTES = 40

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One network-layer packet.

    Attributes
    ----------
    src, dst:
        Host addresses (opaque strings) used by routers for forwarding.
    size_bytes:
        Wire size including headers; this is what token buckets charge.
    payload:
        The transport-layer message (a QUIC packet, a TCP segment, ...).
        The network never inspects it.
    flow_id:
        Optional label for per-flow accounting in shared-bottleneck
        experiments (Table 4 / Fig. 4).
    """

    src: str
    dst: str
    size_bytes: int
    payload: Any = None
    flow_id: Optional[str] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Stamped by the first link the packet enters; used for one-way-delay
    #: accounting and debugging.
    enqueued_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B flow={self.flow_id}>"
        )

"""Packet capture and path characterisation (the router's tcpdump).

The paper *measures* its operational networks before emulating them:
Table 5 reports each cell network's throughput, RTT, reordering rate and
loss rate.  This module provides the same measurement capability for the
simulated testbed:

* :class:`PacketCapture` taps a link and records per-packet events
  (time, size, flow) plus drops, like tcpdump + interface counters;
* :meth:`PacketCapture.characterize` reduces a capture to the Table 5
  quantities — achieved throughput, loss rate, reordering rate and mean
  reordering depth;
* :func:`characterize_scenario` runs a canonical probe flow through a
  scenario and reports what a measurer would see — used by the test
  suite to verify that emulated cell profiles actually exhibit their
  configured characteristics (closing the paper's measure-then-emulate
  loop).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .link import Link
from .packet import Packet
from .profiles import Scenario
from .sim import Simulator


@dataclass
class CaptureRecord:
    """One delivered packet, as tcpdump would log it."""

    time: float
    src: str
    dst: str
    size_bytes: int
    flow_id: Optional[str]
    packet_id: int


@dataclass
class PathCharacteristics:
    """The Table 5 quantities for one observed direction."""

    duration: float
    delivered_packets: int
    delivered_bytes: int
    dropped_packets: int
    lost_packets: int
    reordered_packets: int
    mean_reorder_depth: float

    @property
    def throughput_mbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.delivered_bytes * 8 / self.duration / 1e6

    @property
    def loss_pct(self) -> float:
        offered = self.delivered_packets + self.lost_packets
        if offered == 0:
            return 0.0
        return self.lost_packets / offered * 100.0

    @property
    def reordering_pct(self) -> float:
        if self.delivered_packets == 0:
            return 0.0
        return self.reordered_packets / self.delivered_packets * 100.0

    def describe(self) -> str:
        return (
            f"{self.throughput_mbps:6.2f} Mbps, loss {self.loss_pct:5.2f}%, "
            f"reordering {self.reordering_pct:5.2f}% "
            f"(mean depth {self.mean_reorder_depth:.1f} pkts)"
        )


class PacketCapture:
    """Records every delivery on a link; computes path characteristics.

    Reordering is measured exactly as network measurement tools do: a
    packet is reordered if one with a later link-entry order was
    delivered before it; depth is how many such packets overtook it.

    The capture attaches through the link's official ``on_send`` /
    ``on_deliver`` taps (no method monkeypatching), so an uncaptured link
    pays nothing beyond two ``is not None`` checks.  Per-packet
    record-keeping (the tcpdump-style log behind :attr:`records` and
    :meth:`to_csv`) is opt-out via ``record=False`` or ``max_records=0``
    for measurement-only captures: :meth:`characterize` needs only the
    running counters, not the log.
    """

    def __init__(self, link: Link, max_records: Optional[int] = None,
                 *, record: bool = True) -> None:
        self.link = link
        self.max_records = max_records
        self._record = record and max_records != 0
        self.records: List[CaptureRecord] = []
        self._entry_order: Dict[int, int] = {}
        self._next_entry = 0
        self._delivered_entries: List[int] = []
        self._reordered = 0
        self._depth_total = 0
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None
        self._previous_send_tap = link.on_send
        self._previous_tap = link.on_deliver
        link.on_send = self._tap_send
        link.on_deliver = self._tap_deliver

    # ------------------------------------------------------------------
    def _tap_send(self, packet: Packet) -> None:
        if self._previous_send_tap is not None:
            self._previous_send_tap(packet)
        self._entry_order[packet.packet_id] = self._next_entry
        self._next_entry += 1

    def _tap_deliver(self, now: float, packet: Packet) -> None:
        if self._previous_tap is not None:
            self._previous_tap(now, packet)
        if self._first_time is None:
            self._first_time = now
        self._last_time = now
        entry = self._entry_order.pop(packet.packet_id, -1)
        overtakers = sum(1 for e in self._delivered_entries if e > entry)
        if overtakers:
            self._reordered += 1
            self._depth_total += overtakers
        self._delivered_entries.append(entry)
        if len(self._delivered_entries) > 256:
            self._delivered_entries.pop(0)
        if self._record and (self.max_records is None
                             or len(self.records) < self.max_records):
            self.records.append(CaptureRecord(
                now, packet.src, packet.dst, packet.size_bytes,
                packet.flow_id, packet.packet_id,
            ))

    # ------------------------------------------------------------------
    def characterize(self) -> PathCharacteristics:
        stats = self.link.stats
        duration = 0.0
        if self._first_time is not None and self._last_time is not None:
            duration = self._last_time - self._first_time
        delivered = stats.delivered_packets
        return PathCharacteristics(
            duration=duration,
            delivered_packets=delivered,
            delivered_bytes=stats.delivered_bytes,
            dropped_packets=stats.dropped_packets,
            lost_packets=stats.lost_packets,
            reordered_packets=self._reordered,
            mean_reorder_depth=(
                self._depth_total / self._reordered if self._reordered else 0.0
            ),
        )

    def to_csv(self) -> str:
        """Export the capture as CSV text (time,src,dst,size,flow,id)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time", "src", "dst", "size_bytes", "flow_id",
                         "packet_id"])
        for record in self.records:
            writer.writerow([f"{record.time:.6f}", record.src, record.dst,
                             record.size_bytes, record.flow_id or "",
                             record.packet_id])
        return buffer.getvalue()

    def detach(self) -> None:
        """Stop capturing and restore the link's original taps."""
        self.link.on_send = self._previous_send_tap
        self.link.on_deliver = self._previous_tap


def characterize_scenario(scenario: Scenario, *, duration: float = 20.0,
                          probe_rate_mbps: Optional[float] = None,
                          seed: int = 0) -> PathCharacteristics:
    """Measure a scenario the way the paper measured its cell networks.

    Sends a constant-rate UDP-like probe stream through the scenario's
    bottleneck for ``duration`` seconds and characterises what arrives.
    ``probe_rate_mbps`` defaults to 1.2x the scenario rate cap (so the
    cap, loss and reordering are all exercised).
    """
    from .topology import build_path

    sim = Simulator()
    path = build_path(sim, scenario, seed=seed)
    capture = PacketCapture(path.bottleneck_up, record=False)
    rate = probe_rate_mbps
    if rate is None:
        rate = (scenario.rate_mbps or 10.0) * 1.2
    interval = 1400 * 8 / (rate * 1e6)
    path.server.register_handler(lambda p: None)

    def send_probe() -> None:
        if sim.now >= duration:
            return
        path.client.send(Packet("client", "server", 1400, flow_id="probe"))
        sim.schedule(interval, send_probe)

    send_probe()
    sim.run(until=duration + 2.0)
    return capture.characterize()

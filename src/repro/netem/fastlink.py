"""Batched bottleneck-link model for the many-flow fast path.

The classic :class:`~repro.netem.link.Link` schedules one simulator
heap event per packet occurrence — transmission start, transmission
done, delivery — which is the right fidelity for protocol-level
experiments but dominates wall time once a single bottleneck carries
~1000 flows.  :class:`AggregateLink` models the *same* link semantics
(FIFO serialisation at ``rate_bps``, a pluggable
:class:`~repro.netem.queues.QueueDiscipline` consulted at enqueue and
dequeue with the correct logical clock, Bernoulli loss drawn at egress
in dequeue order, constant one-way ``delay``) but produces its work as
*time-ordered internal items* — a transmission-completion scalar and a
monotone delivery deque — that the engine drains in batches: one heap
event services a whole burst instead of one event per packet.

Exactness is by construction, not approximation: every item carries
its exact logical timestamp, all queueing/sojourn/RTT arithmetic uses
those timestamps, and the processing order of items is the merged
logical-time order — identical whether the engine wakes once per item
("per-packet mode", quantum 0) or once per batch.  The fixed-seed
identity contract in ``BENCH_manyflow.json`` rests on this.

Restrictions versus the classic link: no jitter and no reordering
(both would break the delivery deque's monotonicity); loss is
supported.  Scenarios with jitter/reordering keep using the classic
per-packet path.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional, Tuple

from .queues import QueueDiscipline

__all__ = ["AggPacket", "AggregateLink"]


class AggPacket:
    """A packet in the aggregate fast path: flow id + index + size.

    Far lighter than :class:`~repro.netem.packet.Packet` (no addresses,
    no global id counter); exposes the two attributes queue disciplines
    consult — ``size_bytes`` and ``flow_id``.
    """

    __slots__ = ("flow_id", "idx", "size_bytes", "retx")

    def __init__(self, flow_id: int, idx: int, size_bytes: int,
                 retx: bool = False) -> None:
        self.flow_id = flow_id
        self.idx = idx
        self.size_bytes = size_bytes
        self.retx = retx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " retx" if self.retx else ""
        return f"<AggPacket f{self.flow_id}#{self.idx} {self.size_bytes}B{tag}>"


class AggregateLink:
    """One shaped, lossy, FIFO direction of a bottleneck link.

    The caller (the many-flow engine) owns the clock: it must call
    :meth:`advance` for the time returned by :attr:`next_completion`
    before that logical time is passed, and drain :attr:`deliveries`
    in merged order with its other work queues.
    """

    __slots__ = ("rate_bps", "delay", "queue", "loss_rate", "_loss_rng",
                 "_busy", "_free_at", "_inflight", "deliveries",
                 "offered_packets", "tx_completions", "launched_packets",
                 "delivered_bytes", "loss_drops")

    def __init__(self, rate_bps: float, delay: float,
                 queue: QueueDiscipline, *, loss_rate: float = 0.0,
                 loss_rng: Optional[random.Random] = None) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng if loss_rng is not None else random.Random(0)
        self._busy = False
        self._free_at = 0.0
        self._inflight: Optional[AggPacket] = None
        #: Launched packets awaiting delivery, as ``(t_deliver, packet)``
        #: — monotone in time because delay is constant and the link is
        #: FIFO, so a deque (not a heap) suffices.
        self.deliveries: Deque[Tuple[float, AggPacket]] = deque()
        self.offered_packets = 0
        self.tx_completions = 0
        self.launched_packets = 0
        self.delivered_bytes = 0
        self.loss_drops = 0

    # ------------------------------------------------------------------
    @property
    def next_completion(self) -> Optional[float]:
        """Logical time the in-flight transmission ends, or None."""
        return self._free_at if self._busy else None

    def offer(self, now: float, packet: AggPacket) -> bool:
        """Enqueue ``packet`` at logical time ``now``.

        Mirrors ``Link.send``: the discipline may tail-drop; if the
        line is idle, transmission starts immediately (which may itself
        trigger dequeue-time AQM drops at clock ``now``).
        """
        self.offered_packets += 1
        if not self.queue.enqueue(now, packet):
            return False
        if not self._busy:
            self._start_transmission(now)
        return True

    def _start_transmission(self, now: float) -> None:
        packet = self.queue.dequeue(now)
        if packet is None:
            self._busy = False
            self._inflight = None
            return
        self._busy = True
        self._inflight = packet
        self._free_at = now + packet.size_bytes * 8.0 / self.rate_bps

    def advance(self) -> None:
        """Process the pending transmission completion.

        At ``next_completion`` the serialised packet launches — the
        egress loss draw happens here, in dequeue order, exactly as the
        classic link draws at ``_launch`` — and the next queued packet
        (if any) starts serialising at the same logical instant.
        """
        packet = self._inflight
        if packet is None:  # pragma: no cover - engine misuse guard
            raise RuntimeError("advance() called on an idle link")
        now = self._free_at
        self.tx_completions += 1
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.loss_drops += 1
        else:
            self.launched_packets += 1
            self.deliveries.append((now + self.delay, packet))
        self._start_transmission(now)

    def pop_delivery(self) -> Tuple[float, AggPacket]:
        """Remove and return the earliest pending delivery."""
        packet = self.deliveries.popleft()
        self.delivered_bytes += packet[1].size_bytes
        return packet

"""Network scenarios: the emulation grid of Table 2 and the cell networks of Table 5.

A :class:`Scenario` captures one row of the paper's emulated-network matrix:
bottleneck rate, base RTT, extra delay, extra loss, jitter, reordering and
queue size.  Named constructors provide the exact parameter values the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

from .link import mbps

#: Rate limits tested in the paper (Table 2), Mbps.
RATE_LIMITS_MBPS: Tuple[float, ...] = (5.0, 10.0, 50.0, 100.0)
#: Extra one-way... the paper phrases these as added round-trip delay (ms).
EXTRA_DELAYS_MS: Tuple[float, ...] = (0.0, 50.0, 100.0)
#: Extra loss rates tested (fraction).
EXTRA_LOSS: Tuple[float, ...] = (0.001, 0.01)
#: Object-count grid (Table 2).
OBJECT_COUNTS: Tuple[int, ...] = (1, 2, 5, 10, 100, 200)
#: Object-size grid in KB (Table 2).  210 MB appears only in the
#: variable-bandwidth experiment (Fig. 11).
OBJECT_SIZES_KB: Tuple[int, ...] = (5, 10, 100, 200, 500, 1000, 10_000)

#: Base round-trip time of the testbed during PLT experiments (Sec. 5.2).
BASE_RTT = 0.036
#: Empirical client->EC2 RTT quoted in Fig. 1.
EC2_RTT = 0.012


@dataclass(frozen=True)
class Scenario:
    """One emulated network environment.

    Attributes
    ----------
    name:
        Human-readable label used in experiment reports.
    rate_mbps:
        Bottleneck rate cap; ``None`` disables rate limiting.
    rtt:
        Base round-trip propagation delay in seconds (split across the
        path's links).
    extra_delay:
        Additional round-trip delay in seconds applied at the bottleneck
        (the paper's "+50ms"/"+100ms" netem knob).
    loss_rate:
        i.i.d. loss probability at the bottleneck, applied once per
        direction (as netem on the router did).
    jitter:
        netem jitter in seconds at the bottleneck (causes reordering).
    reorder_prob / reorder_extra:
        Explicit reordering (cellular profiles, Table 5).
    queue_bytes:
        Droptail bottleneck buffer; ``None`` selects an auto size of
        ~1.5 x BDP (the paper tuned TBF queues so flows reach the cap).
    rtt_run_variation:
        Per-*run* fractional RTT perturbation (default 2%), modelling the
        round-to-round path variation of a real testbed.  Without it the
        simulator is fully deterministic on clean links and Welch's
        t-test degenerates; the paper's environment has natural noise.
    """

    name: str
    rate_mbps: Optional[float] = None
    rtt: float = BASE_RTT
    extra_delay: float = 0.0
    loss_rate: float = 0.0
    jitter: float = 0.0
    reorder_prob: float = 0.0
    reorder_extra: float = 0.0
    queue_bytes: Optional[int] = None
    rtt_run_variation: float = 0.02

    # -- derived quantities ------------------------------------------------
    @property
    def total_rtt(self) -> float:
        """Base RTT plus the added netem delay."""
        return self.rtt + self.extra_delay

    @property
    def rate_bps(self) -> Optional[float]:
        return None if self.rate_mbps is None else mbps(self.rate_mbps)

    def effective_queue_bytes(self) -> Optional[int]:
        """The droptail buffer to configure at the bottleneck."""
        if self.queue_bytes is not None:
            return self.queue_bytes
        if self.rate_mbps is None:
            return None
        bdp = self.rate_bps * self.total_rtt / 8.0
        return int(max(1.5 * bdp, 32_000))

    def with_(self, **changes) -> "Scenario":
        """Return a modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    # -- spec round-trip ---------------------------------------------------
    # A Scenario is pure data, so it can travel to executor workers (or
    # across machines) as a plain dict and be rebuilt bit-identically.
    def to_spec(self) -> Dict[str, object]:
        """This scenario as a plain JSON-able dict of its fields."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_spec` output.

        Unknown keys are rejected with the list of known fields, so a
        typo'd or newer-schema spec fails loudly instead of half-applying.
        """
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario field(s): {', '.join(map(repr, unknown))} "
                f"(known fields: {', '.join(sorted(known))})"
            )
        if "name" not in spec:
            raise ValueError("a scenario spec needs at least a 'name'")
        return cls(**spec)

    def describe(self) -> str:
        parts = [self.name]
        if self.rate_mbps is not None:
            parts.append(f"{self.rate_mbps:g}Mbps")
        parts.append(f"rtt={self.total_rtt * 1000:.0f}ms")
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate * 100:g}%")
        if self.jitter:
            parts.append(f"jitter={self.jitter * 1000:g}ms")
        if self.reorder_prob:
            parts.append(f"reorder={self.reorder_prob * 100:g}%")
        return " ".join(parts)


def emulated(rate_mbps: Optional[float], *, extra_delay_ms: float = 0.0,
             loss_pct: float = 0.0, jitter_ms: float = 0.0,
             name: Optional[str] = None) -> Scenario:
    """Build one cell of the paper's emulation grid.

    ``extra_delay_ms`` and ``loss_pct`` use the paper's units (added RTT in
    milliseconds; loss in percent).
    """
    label = name or (
        f"{rate_mbps:g}Mbps+{extra_delay_ms:g}ms+{loss_pct:g}%loss"
        if rate_mbps is not None
        else f"unlimited+{extra_delay_ms:g}ms+{loss_pct:g}%loss"
    )
    return Scenario(
        name=label,
        rate_mbps=rate_mbps,
        extra_delay=extra_delay_ms / 1000.0,
        loss_rate=loss_pct / 100.0,
        jitter=jitter_ms / 1000.0,
    )


def fairness_bottleneck() -> Scenario:
    """The Table 4 / Fig. 4 environment: 5 Mbps, RTT 36 ms, 30 KB buffer."""
    return Scenario(
        name="fairness-5Mbps",
        rate_mbps=5.0,
        rtt=0.036,
        queue_bytes=30_000,
    )


def reordering_scenario() -> Scenario:
    """Fig. 10: 112 ms RTT with 10 ms jitter causing deep reordering."""
    return Scenario(
        name="reorder-112ms-10msjitter",
        rate_mbps=100.0,
        rtt=0.112,
        jitter=0.010,
    )


def variable_bandwidth_scenario() -> Scenario:
    """Fig. 11 base: rate is fluctuated by a BandwidthSchedule at runtime.

    The queue is kept deliberately short (~0.2 x BDP at the 150 Mbps
    peak), matching the paper's TBF calibration goal of reaching the
    rate caps without long standing queues; a deep buffer would smooth
    the rate transitions away and hide the protocols' tracking behaviour.
    """
    return Scenario(name="variable-bw-50-150Mbps", rate_mbps=100.0,
                    rtt=0.036, queue_bytes=100_000)


@dataclass(frozen=True)
class CellularProfile:
    """Measured characteristics of one operational cell network (Table 5)."""

    name: str
    throughput_mbps: float
    rtt_ms: float
    rtt_std_ms: float
    reordering_pct: float
    loss_pct: float

    def scenario(self) -> Scenario:
        """Translate the measured characteristics into an emulation scenario.

        Reordering in Table 5 is the *fraction of packets observed out of
        order*, so the emulation must reproduce it at the network's own
        packet spacing: the explicit reordering delay is ~2.5 spacings
        (guaranteeing the delayed packet is actually overtaken), while
        delay jitter is kept below the spacing so it models RTT
        variability without adding accidental reordering on top of the
        measured rate.
        """
        spacing = 1350 * 8 / (self.throughput_mbps * 1e6)
        jitter = min(self.rtt_std_ms / 1000.0 / 4.0, spacing / 3.0)
        reorder_extra = max(2.5 * spacing, self.rtt_std_ms / 1000.0)
        return Scenario(
            name=self.name,
            rate_mbps=self.throughput_mbps,
            rtt=self.rtt_ms / 1000.0,
            jitter=jitter,
            loss_rate=self.loss_pct / 100.0,
            reorder_prob=self.reordering_pct / 100.0,
            reorder_extra=reorder_extra,
        )


#: Table 5 of the paper, verbatim.
CELLULAR_PROFILES: Dict[str, CellularProfile] = {
    "verizon-3g": CellularProfile("verizon-3g", 0.17, 109.0, 20.0, 1.71, 0.05),
    "verizon-lte": CellularProfile("verizon-lte", 4.0, 61.0, 14.0, 0.25, 0.0),
    "sprint-3g": CellularProfile("sprint-3g", 0.31, 70.0, 39.0, 1.38, 0.02),
    "sprint-lte": CellularProfile("sprint-lte", 2.4, 55.0, 11.0, 0.13, 0.02),
}


def plt_grid(rates: Tuple[float, ...] = RATE_LIMITS_MBPS,
             extra_delay_ms: float = 0.0,
             loss_pct: float = 0.0) -> List[Scenario]:
    """All rate-limit scenarios for one heatmap row dimension."""
    return [
        emulated(rate, extra_delay_ms=extra_delay_ms, loss_pct=loss_pct)
        for rate in rates
    ]

"""Discrete-event simulation core.

Everything in :mod:`repro` runs on top of this tiny, deterministic event
loop.  It plays the role that real wall-clock time, the OpenWRT router and
the operating system schedulers played in the paper's physical testbed:
links, transport timers (RTO, TLP, delayed ACK), device CPU models and the
video player all schedule callbacks here.

Design notes
------------
* Time is a ``float`` number of seconds.  All components treat it as
  opaque "now"; only differences of times are meaningful.
* Events scheduled for the same instant fire in FIFO order (a
  monotonically increasing sequence number breaks ties), which keeps runs
  fully deterministic for a given seed.
* Events are cancellable.  Transport retransmission timers rely on this.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`.  Holding on to the event allows cancelling or
    inspecting it; dropping it is fine, the simulator keeps its own
    reference until the event fires.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has not been cancelled (it may still have fired)."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.010, handler, arg1, arg2)   # 10 ms from now
        sim.run()                                   # until queue drains

    The simulator is intentionally minimal: no processes, no channels.
    Higher-level abstractions (links, connections) are plain objects that
    schedule callbacks.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._event_count = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired (cancelled ones excluded)."""
        return self._event_count

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns a cancellable
        :class:`Event`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        event = Event(when, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is then advanced to ``until``.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` if more
            than this many events fire.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self._event_count += 1
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                event.callback(*event.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  max_events: Optional[int] = None) -> bool:
        """Run until ``predicate()`` becomes true or ``timeout`` is reached.

        Returns ``True`` if the predicate was satisfied.  The predicate is
        checked after every event, so it sees a consistent world.
        """
        if predicate():
            return True
        deadline = self._now + timeout
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.time > deadline:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._event_count += 1
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            event.callback(*event.args)
            if predicate():
                return True
        if self._now < deadline:
            self._now = deadline
        return predicate()

    def pending_events(self) -> int:
        """Number of queued, non-cancelled events (O(n); for tests)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"

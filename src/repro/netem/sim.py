"""Discrete-event simulation core.

Everything in :mod:`repro` runs on top of this tiny, deterministic event
loop.  It plays the role that real wall-clock time, the OpenWRT router and
the operating system schedulers played in the paper's physical testbed:
links, transport timers (RTO, TLP, delayed ACK), device CPU models and the
video player all schedule callbacks here.

Design notes
------------
* Time is a ``float`` number of seconds.  All components treat it as
  opaque "now"; only differences of times are meaningful.
* Events scheduled for the same instant fire in FIFO order (a
  monotonically increasing sequence number breaks ties), which keeps runs
  fully deterministic for a given seed.
* Two scheduling flavours share one heap and one sequence space:

  - :meth:`Simulator.post` / :meth:`Simulator.post_at` push a bare
    ``(time, seq, callback, args)`` tuple — no allocation beyond the
    tuple, and heap ordering compares the first two floats/ints directly
    in C instead of dispatching into a Python ``__lt__``.  This is the
    fast path for the non-cancellable majority of events (packet
    transmissions, deliveries, sender wakeups, device-CPU completions).
  - :meth:`Simulator.schedule` / :meth:`Simulator.at` wrap the callback
    in a cancellable :class:`Event` and push ``(time, seq, None, event)``
    — the ``None`` in the callback slot marks the entry as cancellable.
    Transport retransmission timers rely on this.

  Both flavours draw from the same sequence counter, so FIFO ordering at
  equal times holds across flavours and a call-site can be switched
  between them without perturbing the event order (only the per-event
  cost changes).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Event:
    """A cancellable scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`.  Holding on to the event allows cancelling or
    inspecting it; dropping it is fine, the simulator keeps its own
    reference until the event fires.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim",
                 "_fired")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple, sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        if not self.cancelled:
            self.cancelled = True
            # Keep the owning simulator's live-event counter exact: a
            # cancelled-but-still-queued event will never fire.  A cancel
            # arriving after the event already fired must not decrement.
            sim = self._sim
            if sim is not None and not self._fired:
                sim._pending -= 1

    @property
    def pending(self) -> bool:
        """True if the event has not been cancelled (it may still have fired)."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


#: One heap entry: ``(time, seq, callback_or_None, args_or_Event)``.
Entry = Tuple[float, int, Optional[Callable[..., Any]], Any]


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.010, handler, arg1, arg2)   # 10 ms, cancellable
        sim.post(0.010, handler, arg1, arg2)       # 10 ms, fire-and-forget
        sim.run()                                   # until queue drains

    The simulator is intentionally minimal: no processes, no channels.
    Higher-level abstractions (links, connections) are plain objects that
    schedule callbacks.
    """

    def __init__(self) -> None:
        self._queue: List[Entry] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._event_count = 0
        #: Queued events that will actually fire (cancelled ones excluded).
        self._pending = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired (cancelled ones excluded)."""
        return self._event_count

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns a cancellable
        :class:`Event`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self)
        self._pending += 1
        heappush(self._queue, (when, seq, None, event))
        return event

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast path: schedule a *non-cancellable* callback ``delay`` from now.

        Identical semantics to :meth:`schedule` except nothing is
        returned, so the callback cannot be cancelled.  Use it for the
        fire-and-forget majority: the heap entry is a plain tuple and no
        :class:`Event` is allocated.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._pending += 1
        heappush(self._queue, (self._now + delay, seq, callback, args))

    def post_at(self, when: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast path: non-cancellable callback at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._pending += 1
        heappush(self._queue, (when, seq, callback, args))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is then advanced to ``until``.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` if more
            than this many events fire.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        queue = self._queue
        pop = heappop
        until_t = _INF if until is None else until
        limit = _INF if max_events is None else max_events
        fired = 0
        # The loop below maintains ``_event_count`` in the local ``fired``
        # and flushes it on exit — nothing observes the counter mid-run.
        try:
            while queue:
                entry = queue[0]
                when = entry[0]
                if when > until_t:
                    break
                pop(queue)
                callback = entry[2]
                if callback is None:
                    event = entry[3]
                    if event.cancelled:
                        continue  # counter already adjusted by cancel()
                    event._fired = True
                    callback = event.callback
                    args = event.args
                else:
                    args = entry[3]
                self._pending -= 1
                self._now = when
                fired += 1
                if fired > limit:
                    raise SimulationError(f"exceeded max_events={max_events}")
                callback(*args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._event_count += fired
            self._running = False

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  max_events: Optional[int] = None) -> bool:
        """Run until ``predicate()`` becomes true or ``timeout`` is reached.

        Returns ``True`` if the predicate was satisfied.  The predicate is
        checked after every event, so it sees a consistent world.
        """
        if predicate():
            return True
        deadline = self._now + timeout
        queue = self._queue
        pop = heappop
        limit = _INF if max_events is None else max_events
        fired = 0
        try:
            while queue:
                entry = queue[0]
                when = entry[0]
                if when > deadline:
                    break
                pop(queue)
                callback = entry[2]
                if callback is None:
                    event = entry[3]
                    if event.cancelled:
                        continue
                    event._fired = True
                    callback = event.callback
                    args = event.args
                else:
                    args = entry[3]
                self._pending -= 1
                self._now = when
                fired += 1
                if fired > limit:
                    raise SimulationError(f"exceeded max_events={max_events}")
                callback(*args)
                if predicate():
                    return True
        finally:
            self._event_count += fired
        if self._now < deadline:
            self._now = deadline
        return predicate()

    def pending_events(self) -> int:
        """Number of queued events that will fire (O(1); cancelled excluded)."""
        return self._pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"

"""Hosts, routers, and static routing for the emulated network.

The paper's testbed is tiny — client, router, server, sometimes a proxy in
the middle, sometimes several client/server pairs sharing one bottleneck.
This module provides just enough network layer for those topologies:
nodes connected by unidirectional :class:`~repro.netem.link.Link` pairs,
with static shortest-path routes (weighted by propagation delay) computed
once after the topology is built.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .link import Link
from .packet import Packet
from .sim import Simulator

PacketHandler = Callable[[Packet], None]


class Node:
    """A network node: forwards packets along precomputed routes.

    Hosts are nodes with a registered local handler; routers are nodes
    without one.  A node with no route for a destination silently drops
    the packet and counts it in :attr:`no_route_drops` (mirroring a real
    router's behaviour with an unknown prefix).
    """

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        #: Next-hop link per destination node name.
        self.routes: Dict[str, Link] = {}
        self._local_handler: Optional[PacketHandler] = None
        self.no_route_drops = 0

    # -- wiring ---------------------------------------------------------
    def register_handler(self, handler: PacketHandler) -> None:
        """Install the local delivery handler (makes this node a host)."""
        self._local_handler = handler

    # -- data path ------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Originate or forward a packet."""
        if packet.dst == self.name:
            self.deliver(packet)
            return
        link = self.routes.get(packet.dst)
        if link is None:
            self.no_route_drops += 1
            return
        link.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Hand a packet that terminates here to the local handler."""
        if self._local_handler is None:
            self.no_route_drops += 1
            return
        self._local_handler(packet)

    def _receive_from_wire(self, packet: Packet) -> None:
        """Entry point for packets arriving over an attached link."""
        if packet.dst == self.name:
            # Inlined deliver(): this runs once per delivered packet.
            handler = self._local_handler
            if handler is None:
                self.no_route_drops += 1
                return
            handler(packet)
        else:
            self.send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "host" if self._local_handler else "router"
        return f"<Node {self.name} ({kind})>"


class Network:
    """Builds a topology of nodes and duplex links and routes packets.

    Example::

        net = Network(sim)
        client = net.add_node("client")
        router = net.add_node("router")
        server = net.add_node("server")
        net.duplex_link("client", "router", rate_bps=mbps(100), delay=0.001)
        net.duplex_link("router", "server", rate_bps=mbps(10), delay=0.017)
        net.build_routes()

    Routes are static shortest paths minimising cumulative configured
    propagation delay (ties broken by hop count, then name, for
    determinism).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        #: (src_name, dst_name) -> Link for every unidirectional link.
        self.links: Dict[Tuple[str, str], Link] = {}

    # -- construction ----------------------------------------------------
    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(self, name)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def duplex_link(self, a: str, b: str, **link_kwargs) -> Tuple[Link, Link]:
        """Create a pair of unidirectional links ``a -> b`` and ``b -> a``.

        Keyword arguments are passed to :class:`Link` for both directions.
        Returns the ``(a_to_b, b_to_a)`` pair so callers can reconfigure
        directions independently (e.g. asymmetric cellular rates).
        """
        if a not in self.nodes or b not in self.nodes:
            raise KeyError("both endpoints must be added before linking")
        forward = Link(self.sim, name=f"{a}->{b}", **link_kwargs)
        backward = Link(self.sim, name=f"{b}->{a}", **link_kwargs)
        forward.attach(self.nodes[b]._receive_from_wire)
        backward.attach(self.nodes[a]._receive_from_wire)
        self.links[(a, b)] = forward
        self.links[(b, a)] = backward
        return forward, backward

    def build_routes(self) -> None:
        """Compute static shortest-path routes for every node pair."""
        adjacency: Dict[str, List[Tuple[str, float]]] = {n: [] for n in self.nodes}
        for (src, dst), link in self.links.items():
            adjacency[src].append((dst, link.delay))
        for origin in self.nodes:
            dist, first_hop = self._dijkstra(origin, adjacency)
            node = self.nodes[origin]
            node.routes = {
                dst: self.links[(origin, hop)]
                for dst, hop in first_hop.items()
                if dst != origin
            }
            del dist

    def _dijkstra(
        self, origin: str, adjacency: Dict[str, List[Tuple[str, float]]]
    ) -> Tuple[Dict[str, float], Dict[str, str]]:
        """Plain Dijkstra returning distances and the *first hop* per dest."""
        import heapq

        dist: Dict[str, float] = {origin: 0.0}
        first_hop: Dict[str, str] = {}
        # (distance, hop_count, tie-break name, node, first_hop_from_origin)
        heap: List[Tuple[float, int, str, str, Optional[str]]] = [
            (0.0, 0, origin, origin, None)
        ]
        visited = set()
        while heap:
            d, hops, _, here, hop0 = heapq.heappop(heap)
            if here in visited:
                continue
            visited.add(here)
            if hop0 is not None:
                first_hop[here] = hop0
            for neighbour, weight in sorted(adjacency[here]):
                if neighbour in visited:
                    continue
                nd = d + weight
                if nd < dist.get(neighbour, float("inf")):
                    dist[neighbour] = nd
                    heapq.heappush(
                        heap,
                        (nd, hops + 1, neighbour, neighbour,
                         neighbour if hop0 is None else hop0),
                    )
        return dist, first_hop

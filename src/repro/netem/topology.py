"""Canned testbed topologies matching the paper's figures.

* :func:`build_path` — Fig. 1: client — router — server, with all
  emulation (rate cap, delay, jitter, loss, reordering) applied at the
  router's WAN link, exactly where the paper applied ``tc``/``netem``
  (Sec. 3.2 explains why shaping must not happen at an endpoint).
* :func:`build_bottleneck` — the fairness dumbbell of Fig. 4 / Table 4:
  N client/server pairs share one bottleneck link.
* :func:`build_proxy_path` — Fig. 16: a proxy midway between client and
  server; each leg carries half the delay and (approximately) half the
  loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .link import Link
from .node import Network, Node
from .profiles import Scenario
from .sim import Simulator

#: Per-direction delay of the client's LAN hop (fast, uncongested).
LAN_DELAY = 0.0005


def _run_rtt_factor(scenario: Scenario, seed: int) -> float:
    """Per-run RTT perturbation (testbed round-to-round noise).

    Deterministic in the seed, so a run is reproducible, but different
    rounds of an experiment see slightly different base RTTs — without
    this, clean-link scenarios are exactly link-clocked and Welch's
    t-test has zero variance to work with.
    """
    if scenario.rtt_run_variation <= 0:
        return 1.0
    rng = random.Random((seed * 2_654_435_761) ^ 0x5EED)
    return 1.0 + rng.uniform(-scenario.rtt_run_variation,
                             scenario.rtt_run_variation)


@dataclass
class Path:
    """A built client—server path and the handles experiments need."""

    sim: Simulator
    network: Network
    client: Node
    server: Node
    #: The shaped bottleneck links (downstream = server->client direction).
    bottleneck_down: Link
    bottleneck_up: Link
    #: Present only for proxy topologies.
    proxy: Optional[Node] = None


def _split_loss(total: float) -> float:
    """Loss applied per direction so that the *round trip* sees ``total``.

    The paper's netem applied loss at the router, affecting each direction
    independently; we keep per-direction loss equal to the configured rate
    (as tc does), so ``total`` is simply passed through.
    """
    return total


def build_path(sim: Simulator, scenario: Scenario,
               seed: int = 0) -> Path:
    """Build the Fig. 1 testbed for one scenario.

    The scenario's RTT is split as: LAN hop (0.5 ms each way) and the
    remainder on the WAN (router—server) link.  Rate limiting, loss,
    jitter and reordering are applied on both directions of the WAN link,
    which is what the paper's OpenWRT router did.
    """
    rng_down = random.Random((seed * 1_000_003) ^ 0xD0)
    rng_up = random.Random((seed * 1_000_003) ^ 0x0B)
    net = Network(sim)
    net.add_node("client")
    net.add_node("router")
    net.add_node("server")

    net.duplex_link("client", "router", rate_bps=None, delay=LAN_DELAY)

    one_way = max(scenario.total_rtt / 2.0 - LAN_DELAY, 0.0)
    one_way *= _run_rtt_factor(scenario, seed)
    queue = scenario.effective_queue_bytes()
    wan_down, wan_up = net.duplex_link(
        "router", "server",
        rate_bps=scenario.rate_bps,
        delay=one_way,
        jitter=scenario.jitter,
        loss_rate=_split_loss(scenario.loss_rate),
        queue_bytes=queue,
        reorder_prob=scenario.reorder_prob,
        reorder_extra=scenario.reorder_extra,
    )
    # Give each direction an independent random stream.
    wan_down.rng = rng_down
    wan_up.rng = rng_up
    net.build_routes()
    return Path(
        sim=sim,
        network=net,
        client=net.node("client"),
        server=net.node("server"),
        bottleneck_down=wan_up,   # server -> router -> client direction
        bottleneck_up=wan_down,   # client -> server direction
    )


def build_bottleneck(sim: Simulator, scenario: Scenario, n_pairs: int,
                     seed: int = 0) -> Tuple[Network, List[Node], List[Node], Link]:
    """Build a dumbbell: ``n_pairs`` client/server pairs share one bottleneck.

    Returns ``(network, clients, servers, bottleneck_down_link)`` where the
    bottleneck link is the server-side to client-side direction (the data
    direction for download experiments, the one whose 30 KB buffer matters
    in Table 4).
    """
    if n_pairs < 1:
        raise ValueError("need at least one pair")
    net = Network(sim)
    net.add_node("agg-left")
    net.add_node("agg-right")
    clients: List[Node] = []
    servers: List[Node] = []
    for i in range(n_pairs):
        c = net.add_node(f"client{i}")
        s = net.add_node(f"server{i}")
        clients.append(c)
        servers.append(s)
        net.duplex_link(c.name, "agg-left", rate_bps=None, delay=LAN_DELAY)
        net.duplex_link(s.name, "agg-right", rate_bps=None, delay=LAN_DELAY)

    one_way = max(scenario.total_rtt / 2.0 - 2 * LAN_DELAY, 0.0)
    one_way *= _run_rtt_factor(scenario, seed)
    queue = scenario.effective_queue_bytes()
    up, down = net.duplex_link(
        "agg-left", "agg-right",
        rate_bps=scenario.rate_bps,
        delay=one_way,
        jitter=scenario.jitter,
        loss_rate=scenario.loss_rate,
        queue_bytes=queue,
    )
    up.rng = random.Random((seed * 7_777_777) ^ 0xA1)
    down.rng = random.Random((seed * 7_777_777) ^ 0xB2)
    net.build_routes()
    return net, clients, servers, down


def build_proxy_path(sim: Simulator, scenario: Scenario,
                     seed: int = 0) -> Path:
    """Build Fig. 16: client — router — proxy — router — server.

    The proxy sits midway: each leg carries half the propagation delay and
    the full per-direction loss rate is split so that the end-to-end loss
    matches the direct path (1 - (1-p/2)^2 ~= p for small p).  The rate cap
    applies to both legs (the bottleneck discipline is unchanged by the
    proxy).
    """
    net = Network(sim)
    for name in ("client", "router-a", "proxy", "router-b", "server"):
        net.add_node(name)
    net.duplex_link("client", "router-a", rate_bps=None, delay=LAN_DELAY)
    net.duplex_link("router-b", "server", rate_bps=None, delay=LAN_DELAY)

    leg_delay = max((scenario.total_rtt / 2.0 - 2 * LAN_DELAY) / 2.0, 0.0)
    leg_delay *= _run_rtt_factor(scenario, seed)
    leg_loss = scenario.loss_rate / 2.0
    queue = scenario.effective_queue_bytes()
    common = dict(
        rate_bps=scenario.rate_bps,
        delay=leg_delay,
        jitter=scenario.jitter / 2.0,
        loss_rate=leg_loss,
        queue_bytes=queue,
    )
    a_fwd, a_bwd = net.duplex_link("router-a", "proxy", **common)
    b_fwd, b_bwd = net.duplex_link("proxy", "router-b", **common)
    for i, link in enumerate((a_fwd, a_bwd, b_fwd, b_bwd)):
        link.rng = random.Random((seed * 9_999_991) ^ (0xC0 + i))
    net.build_routes()
    return Path(
        sim=sim,
        network=net,
        client=net.node("client"),
        server=net.node("server"),
        bottleneck_down=b_bwd,
        bottleneck_up=a_fwd,
        proxy=net.node("proxy"),
    )

"""Network emulation substrate.

A deterministic discrete-event reimplementation of the paper's testbed
router: ``tc`` token-bucket rate limiting, droptail queues, ``netem``
delay/jitter/loss/reordering, plus the topologies of Figs. 1, 4 and 16.
"""

from .capture import (
    CaptureRecord,
    PacketCapture,
    PathCharacteristics,
    characterize_scenario,
)
from .link import BandwidthSchedule, Link, LinkStats, mbps
from .node import Network, Node
from .packet import DEFAULT_MSS, HEADER_BYTES, Packet
from .queues import (
    AQM_NAMES,
    CoDel,
    DropTail,
    FQCoDel,
    QueueDiscipline,
    RED,
    make_queue,
)
from .profiles import (
    CELLULAR_PROFILES,
    BASE_RTT,
    CellularProfile,
    EXTRA_DELAYS_MS,
    EXTRA_LOSS,
    OBJECT_COUNTS,
    OBJECT_SIZES_KB,
    RATE_LIMITS_MBPS,
    Scenario,
    emulated,
    fairness_bottleneck,
    plt_grid,
    reordering_scenario,
    variable_bandwidth_scenario,
)
from .sim import Event, SimulationError, Simulator
from .tracebw import (
    BandwidthTrace,
    TraceDrivenLink,
    lte_like_trace,
    saw_tooth_trace,
)
from .topology import Path, build_bottleneck, build_path, build_proxy_path

__all__ = [
    "CaptureRecord",
    "PacketCapture",
    "PathCharacteristics",
    "characterize_scenario",
    "BandwidthSchedule",
    "Link",
    "LinkStats",
    "mbps",
    "Network",
    "Node",
    "DEFAULT_MSS",
    "HEADER_BYTES",
    "Packet",
    "AQM_NAMES",
    "CoDel",
    "DropTail",
    "FQCoDel",
    "QueueDiscipline",
    "RED",
    "make_queue",
    "CELLULAR_PROFILES",
    "BASE_RTT",
    "CellularProfile",
    "EXTRA_DELAYS_MS",
    "EXTRA_LOSS",
    "OBJECT_COUNTS",
    "OBJECT_SIZES_KB",
    "RATE_LIMITS_MBPS",
    "Scenario",
    "emulated",
    "fairness_bottleneck",
    "plt_grid",
    "reordering_scenario",
    "variable_bandwidth_scenario",
    "Event",
    "SimulationError",
    "Simulator",
    "BandwidthTrace",
    "TraceDrivenLink",
    "lte_like_trace",
    "saw_tooth_trace",
    "Path",
    "build_bottleneck",
    "build_path",
    "build_proxy_path",
]

"""Adaptive bitrate streaming (extension beyond the paper).

The paper pins quality per run because it studies the *transport*; real
YouTube adapts.  This module adds a rate-based ABR controller on top of
:class:`~repro.video.player.VideoPlayer` so the interaction between
transport behaviour and quality adaptation can be studied: a transport
with steadier goodput (the paper's QUIC-under-fluctuation claim) should
sustain higher qualities with fewer downward switches.

The controller is classic throughput-rule ABR: pick the highest quality
whose bitrate fits within ``safety_factor`` x the harmonic-mean
throughput of the last few segment downloads; never switch more than one
rung at a time (YouTube-style smoothing).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..netem.sim import Simulator
from .catalog import QUALITIES, QUALITY_BITRATES, Video, one_hour_video
from .player import QoEMetrics, VideoPlayer


class AbrVideoPlayer(VideoPlayer):
    """A player that re-selects quality per segment from throughput."""

    def __init__(self, sim: Simulator, connection: Any, *,
                 protocol: str = "", start_quality: str = "medium",
                 safety_factor: float = 0.8, window: int = 3,
                 segment_duration: float = 2.0, **player_kwargs: Any) -> None:
        if start_quality not in QUALITIES:
            raise KeyError(f"unknown quality {start_quality!r}")
        self.ladder: List[Video] = [
            one_hour_video(q, segment_duration) for q in QUALITIES
        ]
        self._level = QUALITIES.index(start_quality)
        super().__init__(sim, connection, self.ladder[self._level],
                         protocol=protocol, **player_kwargs)
        self.safety_factor = safety_factor
        self.window = window
        self._samples_mbps: List[float] = []
        self._request_started_at: Optional[float] = None
        #: (segment_index, quality) history for QoE analysis.
        self.quality_history: List[tuple] = []
        self.switches_up = 0
        self.switches_down = 0

    # -- quality selection ------------------------------------------------
    def _estimate_mbps(self) -> Optional[float]:
        if not self._samples_mbps:
            return None
        recent = self._samples_mbps[-self.window:]
        return len(recent) / sum(1.0 / s for s in recent)  # harmonic mean

    def _choose_level(self) -> int:
        estimate = self._estimate_mbps()
        if estimate is None:
            return self._level
        budget = estimate * self.safety_factor * 1e6
        best = 0
        for idx, quality in enumerate(QUALITIES):
            if QUALITY_BITRATES[quality] <= budget:
                best = idx
        # Smooth: at most one rung per decision.
        if best > self._level:
            return self._level + 1
        if best < self._level:
            return self._level - 1
        return self._level

    # -- hooks into the base player -----------------------------------------
    def _fill_pipeline(self) -> None:
        # Re-point self.video at the currently selected rung before the
        # base class forms the next request.
        new_level = self._choose_level()
        if new_level != self._level:
            if new_level > self._level:
                self.switches_up += 1
            else:
                self.switches_down += 1
            self._level = new_level
            self.video = self.ladder[new_level]
        if (self._outstanding == 0
                and self._next_to_request < self.video.segment_count):
            self._request_started_at = self.sim.now
        super()._fill_pipeline()

    def _on_segment(self, stream_id: int, meta: Any, now: float) -> None:
        if self._request_started_at is not None:
            elapsed = max(now - self._request_started_at, 1e-6)
            mbps = meta["size"] * 8 / elapsed / 1e6
            self._samples_mbps.append(mbps)
            self._request_started_at = None
        self.quality_history.append(
            (meta.get("seg"), QUALITIES[self._level]))
        super()._on_segment(stream_id, meta, now)

    # -- reporting ------------------------------------------------------------
    def finalize(self) -> QoEMetrics:
        metrics = super().finalize()
        metrics.quality = self.current_quality
        return metrics

    @property
    def current_quality(self) -> str:
        return QUALITIES[self._level]

    def mean_level(self) -> float:
        """Average ladder rung over the downloaded segments."""
        if not self.quality_history:
            return float(self._level)
        return sum(QUALITIES.index(q) for _, q in self.quality_history) \
            / len(self.quality_history)

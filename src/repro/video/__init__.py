"""Video streaming QoE (paper Sec. 5.3 / Table 6)."""

from .abr import AbrVideoPlayer
from .catalog import QUALITIES, QUALITY_BITRATES, Video, VideoSegment, one_hour_video
from .player import QoEMetrics, VideoPlayer
from .qoe import QoEAggregate, measure_video_qoe, play_video_once

__all__ = [
    "AbrVideoPlayer",
    "QUALITIES",
    "QUALITY_BITRATES",
    "Video",
    "VideoSegment",
    "one_hour_video",
    "QoEMetrics",
    "VideoPlayer",
    "QoEAggregate",
    "measure_video_qoe",
    "play_video_once",
]

"""The streaming player and its QoE logger (paper Sec. 5.3, Table 6).

Reimplements the paper's measurement tool: open the one-hour video at a
pinned quality, let it run for 60 seconds, and log QoE metrics — time to
start, fraction of the video loaded in the window, buffering-to-playing
ratio, and rebuffer counts.  ABR is disabled (the paper pins quality per
run), so the transport's sustained goodput is the only variable, exactly
the property Sec. 5.3 isolates.

Player model: segments are fetched in order with a small request
pipeline; playback starts once :attr:`startup_segments` are buffered;
an empty buffer stalls playback (a rebuffer event) until
:attr:`resume_segments` are available again; the forward buffer is
capped (YouTube-style preload limit), which is what bounds the
"fraction loaded" for the tiny quality in Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..netem.sim import Event, Simulator
from .catalog import Video


@dataclass
class QoEMetrics:
    """Table 6's columns for one playback session."""

    quality: str
    protocol: str
    time_to_start: Optional[float]
    video_loaded_pct: float
    buffer_play_ratio_pct: float
    rebuffer_count: int
    rebuffers_per_played_sec: float
    played_seconds: float
    stalled_seconds: float

    def row(self) -> str:
        tts = f"{self.time_to_start:.2f}" if self.time_to_start is not None else "n/a"
        return (
            f"{self.quality:<8} {self.protocol:<5} start={tts}s "
            f"loaded={self.video_loaded_pct:5.1f}% "
            f"buffer/play={self.buffer_play_ratio_pct:6.1f}% "
            f"rebuffers={self.rebuffer_count} "
            f"({self.rebuffers_per_played_sec:.3f}/s)"
        )


class VideoPlayer:
    """Streams a :class:`Video` over a transport connection."""

    def __init__(
        self,
        sim: Simulator,
        connection: Any,
        video: Video,
        *,
        protocol: str = "",
        startup_segments: int = 1,
        resume_segments: int = 1,
        pipeline_depth: int = 1,
        max_buffer_ahead: float = 1200.0,
    ) -> None:
        self.sim = sim
        self.connection = connection
        self.video = video
        self.protocol = protocol
        self.startup_segments = startup_segments
        self.resume_segments = resume_segments
        self.pipeline_depth = pipeline_depth
        self.max_buffer_ahead = max_buffer_ahead

        self._next_to_request = 0
        self._outstanding = 0
        self._downloaded_segments = 0
        self._buffered_seconds = 0.0
        self._playing = False
        self._started_at: Optional[float] = None
        self._play_resumed_at: Optional[float] = None
        self._played_seconds = 0.0
        self._stall_started_at: Optional[float] = None
        self._stalled_seconds = 0.0
        self._rebuffer_count = 0
        self._underrun_event: Optional[Event] = None
        self._start_time = 0.0
        self._finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the connection and begin fetching."""
        self._start_time = self.sim.now
        self.connection.connect(self._on_ready)
        if getattr(self.connection, "handshake_ready_time", None) is not None:
            self._fill_pipeline()

    def _on_ready(self, _now: float) -> None:
        self._fill_pipeline()

    # ------------------------------------------------------------------
    # download pipeline
    # ------------------------------------------------------------------
    def _fill_pipeline(self) -> None:
        while (
            self._outstanding < self.pipeline_depth
            and self._next_to_request < self.video.segment_count
            and self._buffered_seconds < self.max_buffer_ahead
        ):
            segment = self.video.segment(self._next_to_request)
            self._next_to_request += 1
            self._outstanding += 1
            meta = {"obj": segment.index, "size": segment.size_bytes,
                    "seg": segment.index}
            self.connection.request(meta, self._on_segment)

    def _on_segment(self, _stream_id: int, meta: Any, now: float) -> None:
        self._outstanding -= 1
        self._downloaded_segments += 1
        self._buffered_seconds += self.video.segment_duration
        if not self._playing:
            if self._buffered_seconds >= (
                self.startup_segments if self._started_at is None
                else self.resume_segments
            ) * self.video.segment_duration:
                self._resume_playback(now)
        else:
            self._reschedule_underrun(now)
        self._fill_pipeline()

    # ------------------------------------------------------------------
    # playback clock
    # ------------------------------------------------------------------
    def _resume_playback(self, now: float) -> None:
        self._playing = True
        if self._started_at is None:
            self._started_at = now
        if self._stall_started_at is not None:
            self._stalled_seconds += now - self._stall_started_at
            self._stall_started_at = None
        self._play_resumed_at = now
        self._reschedule_underrun(now)

    def _reschedule_underrun(self, now: float) -> None:
        if self._underrun_event is not None:
            self._underrun_event.cancel()
        remaining = self._current_buffer(now)
        self._underrun_event = self.sim.schedule(
            max(remaining, 0.0), self._on_underrun
        )

    def _current_buffer(self, now: float) -> float:
        """Seconds of media buffered ahead of the playhead right now."""
        if not self._playing or self._play_resumed_at is None:
            return self._buffered_seconds
        consumed = now - self._play_resumed_at
        return self._buffered_seconds - consumed

    def _on_underrun(self) -> None:
        self._underrun_event = None
        now = self.sim.now
        if not self._playing:
            return
        # Settle the playback accounting up to now.
        consumed = now - (self._play_resumed_at or now)
        self._played_seconds += consumed
        self._buffered_seconds = max(self._buffered_seconds - consumed, 0.0)
        self._play_resumed_at = None
        self._playing = False
        if self._next_to_request >= self.video.segment_count and self._outstanding == 0:
            self._finished = True
            return
        self._rebuffer_count += 1
        self._stall_started_at = now
        self._fill_pipeline()

    # ------------------------------------------------------------------
    def finalize(self) -> QoEMetrics:
        """Stop the session and compute Table 6's metrics."""
        now = self.sim.now
        if self._underrun_event is not None:
            self._underrun_event.cancel()
            self._underrun_event = None
        if self._playing and self._play_resumed_at is not None:
            consumed = min(now - self._play_resumed_at, self._buffered_seconds)
            self._played_seconds += consumed
            self._buffered_seconds -= consumed
            self._playing = False
        if self._stall_started_at is not None:
            self._stalled_seconds += now - self._stall_started_at
            self._stall_started_at = None
        played = self._played_seconds
        loaded_pct = (
            self._downloaded_segments * self.video.segment_duration
            / self.video.duration * 100.0
        )
        buffer_ratio = (self._stalled_seconds / played * 100.0) if played > 0 else 0.0
        time_to_start = (
            self._started_at - self._start_time
            if self._started_at is not None else None
        )
        return QoEMetrics(
            quality=self.video.quality,
            protocol=self.protocol,
            time_to_start=time_to_start,
            video_loaded_pct=loaded_pct,
            buffer_play_ratio_pct=buffer_ratio,
            rebuffer_count=self._rebuffer_count,
            rebuffers_per_played_sec=(
                self._rebuffer_count / played if played > 0 else 0.0
            ),
            played_seconds=played,
            stalled_seconds=self._stalled_seconds,
        )

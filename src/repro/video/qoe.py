"""Video QoE experiment driver (Table 6).

Runs the paper's exact protocol: open the one-hour title at a pinned
quality, stream for 60 seconds over QUIC or TCP in the emulated
environment (100 Mbps with 1% loss for the headline table), log QoE,
repeat over seeded rounds, and aggregate mean/std per metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.stats import mean, sample_std
from ..devices import DESKTOP, DeviceProfile
from ..netem.profiles import Scenario, emulated
from ..netem.sim import Simulator
from ..netem.topology import build_path
from ..quic.config import QuicConfig, quic_config
from ..quic.connection import open_quic_pair
from ..tcp.config import TcpConfig, tcp_config
from ..tcp.connection import open_tcp_pair
from .catalog import Video, one_hour_video
from .player import QoEMetrics, VideoPlayer

#: The headline Table 6 environment.
TABLE6_SCENARIO_KWARGS = dict(rate_mbps=100.0, loss_pct=1.0)


def play_video_once(
    scenario: Scenario,
    quality: str,
    protocol: str,
    *,
    seed: int = 0,
    test_seconds: float = 60.0,
    quic_cfg: Optional[QuicConfig] = None,
    tcp_cfg: Optional[TcpConfig] = None,
    device: DeviceProfile = DESKTOP,
) -> QoEMetrics:
    """One 60-second streaming session; returns its QoE metrics."""
    sim = Simulator()
    path = build_path(sim, scenario, seed=seed)
    video = one_hour_video(quality)
    handler = lambda meta: meta["size"]  # noqa: E731 - segment server
    if protocol == "quic":
        cfg = quic_cfg if quic_cfg is not None else quic_config(34)
        client, _server = open_quic_pair(
            sim, path.client, path.server, cfg, device=device,
            request_handler=handler, seed=seed,
        )
    elif protocol == "tcp":
        cfg = tcp_cfg if tcp_cfg is not None else tcp_config()
        client, _server = open_tcp_pair(
            sim, path.client, path.server, cfg, device=device,
            request_handler=handler, seed=seed,
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    player = VideoPlayer(sim, client, video, protocol=protocol)
    player.start()
    sim.run(until=test_seconds)
    return player.finalize()


@dataclass
class QoEAggregate:
    """Mean (std) per metric over the measurement rounds — a Table 6 cell."""

    quality: str
    protocol: str
    runs: List[QoEMetrics]

    def _collect(self, attr: str) -> List[float]:
        values = []
        for run in self.runs:
            value = getattr(run, attr)
            values.append(0.0 if value is None else float(value))
        return values

    def stat(self, attr: str) -> Tuple[float, float]:
        values = self._collect(attr)
        return mean(values), sample_std(values)

    def row(self) -> str:
        tts = self.stat("time_to_start")
        loaded = self.stat("video_loaded_pct")
        ratio = self.stat("buffer_play_ratio_pct")
        rebuf = self.stat("rebuffer_count")
        per_sec = self.stat("rebuffers_per_played_sec")
        return (
            f"{self.quality:<8} {self.protocol:<5} "
            f"start {tts[0]:5.2f} ({tts[1]:4.2f})  "
            f"loaded% {loaded[0]:5.1f} ({loaded[1]:4.2f})  "
            f"buf/play% {ratio[0]:6.1f} ({ratio[1]:5.2f})  "
            f"rebufs {rebuf[0]:4.1f} ({rebuf[1]:3.1f})  "
            f"per-sec {per_sec[0]:5.3f} ({per_sec[1]:4.3f})"
        )


def measure_video_qoe(
    quality: str,
    protocol: str,
    runs: int = 10,
    *,
    scenario: Optional[Scenario] = None,
    seed_base: int = 0,
    **kwargs,
) -> QoEAggregate:
    """Table 6: repeated 60-second sessions, aggregated."""
    scenario = scenario if scenario is not None else emulated(
        TABLE6_SCENARIO_KWARGS["rate_mbps"],
        loss_pct=TABLE6_SCENARIO_KWARGS["loss_pct"],
    )
    sessions = [
        play_video_once(scenario, quality, protocol, seed=seed_base + i, **kwargs)
        for i in range(runs)
    ]
    return QoEAggregate(quality, protocol, sessions)

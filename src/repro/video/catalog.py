"""The video catalog: a one-hour title in every quality (paper Sec. 5.3).

The paper streams a one-hour YouTube video pinned to each quality level
from "tiny" to 4K.  We model the title as fixed-duration segments whose
size follows the quality's nominal bitrate; the segment grid is what the
player requests over the transport under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Nominal bitrates (bits/second) per YouTube-style quality label.
QUALITY_BITRATES: Dict[str, float] = {
    "tiny": 0.11e6,     # 144p
    "medium": 0.75e6,   # 360p
    "hd720": 2.5e6,
    "hd2160": 35.0e6,   # 4K
}

#: The paper pins these four (Table 2 / Table 6).
QUALITIES: Tuple[str, ...] = ("tiny", "medium", "hd720", "hd2160")


@dataclass(frozen=True)
class VideoSegment:
    """One media segment: ``index`` within the title, ``size_bytes`` on disk."""

    index: int
    duration: float
    size_bytes: int


@dataclass(frozen=True)
class Video:
    """A title encoded at one quality."""

    quality: str
    duration: float
    segment_duration: float
    bitrate: float

    @property
    def segment_count(self) -> int:
        return int(self.duration / self.segment_duration)

    def segment(self, index: int) -> VideoSegment:
        if not 0 <= index < self.segment_count:
            raise IndexError(f"segment {index} out of range")
        size = int(self.bitrate * self.segment_duration / 8)
        return VideoSegment(index, self.segment_duration, max(size, 1))

    @property
    def total_bytes(self) -> int:
        return self.segment(0).size_bytes * self.segment_count


def one_hour_video(quality: str, segment_duration: float = 2.0) -> Video:
    """The paper's one-hour test title at the given quality."""
    if quality not in QUALITY_BITRATES:
        raise KeyError(f"unknown quality {quality!r}; choose from {QUALITIES}")
    return Video(
        quality=quality,
        duration=3600.0,
        segment_duration=segment_duration,
        bitrate=QUALITY_BITRATES[quality],
    )

"""From-scratch TCP(+TLS, HTTP/2 framing) — the paper's baseline stack."""

from .config import TcpConfig, default_tcp_cubic, tcp_config
from .connection import TcpConnection, open_tcp_pair
from .segment import Piece, SegmentRecord, TcpSegment

__all__ = [
    "TcpConfig",
    "default_tcp_cubic",
    "tcp_config",
    "TcpConnection",
    "open_tcp_pair",
    "Piece",
    "SegmentRecord",
    "TcpSegment",
]

"""TCP wire elements: segments with cumulative ACK, SACK and DSACK.

As with QUIC, only performance-relevant structure is modelled: sequence
ranges, ACK fields, advertised window.  A data segment also carries its
"pieces" — the mapping from byte ranges to application messages — which
stands in for HTTP/2 frame headers inside the TLS stream (the receiver
can only use them once the bytes are *in order*: that is TCP's
head-of-line blocking, modelled exactly).

Hand-rolled ``__slots__`` classes (not dataclasses) for the same reason
as :mod:`repro.quic.frames`: one of these is allocated per segment on
the wire, and ``wire_bytes``/``end`` are read several times per segment
— both are plain attributes computed once at construction (``seq``,
``length`` and ``kind`` are never reassigned).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

#: TCP+TLS per-segment overhead beyond the network HEADER_BYTES (TLS
#: record framing etc.); small and identical for both directions.
SEGMENT_OVERHEAD = 12


class Piece:
    """``length`` bytes of message ``msg_id`` within a segment.

    ``total`` and ``meta`` ride on a message's first piece so the receiver
    learns the message's size and application metadata (an HTTP/2 HEADERS
    frame, in effect).
    """

    __slots__ = ("msg_id", "length", "total", "meta", "fin")

    def __init__(self, msg_id: int, length: int, total: Optional[int] = None,
                 meta: Any = None, fin: bool = False) -> None:
        self.msg_id = msg_id
        self.length = length
        self.total = total
        self.meta = meta
        #: True on a message's final piece (HTTP/2 END_STREAM flag).
        self.fin = fin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Piece(msg_id={self.msg_id}, length={self.length})"


class TcpSegment:
    """One TCP segment (data, pure ACK, or handshake control)."""

    __slots__ = ("conn_id", "kind", "seq", "length", "pieces", "cum_ack",
                 "sack_blocks", "dsack", "rwnd", "ctrl", "ctrl_size",
                 "wire_bytes", "end")

    def __init__(self, conn_id: str, kind: str, seq: int = 0, length: int = 0,
                 pieces: Optional[List[Piece]] = None,
                 cum_ack: Optional[int] = None,
                 sack_blocks: Tuple[Tuple[int, int], ...] = (),
                 dsack: Optional[Tuple[int, int]] = None,
                 rwnd: Optional[int] = None, ctrl: Optional[str] = None,
                 ctrl_size: int = 0) -> None:
        self.conn_id = conn_id
        self.kind = kind  # "data" | "ack" | "ctrl"
        #: Data fields.
        self.seq = seq
        self.length = length
        self.pieces = pieces if pieces is not None else []
        #: ACK fields (piggybacked on data too).
        self.cum_ack = cum_ack
        self.sack_blocks = sack_blocks
        self.dsack = dsack
        self.rwnd = rwnd
        #: Handshake fields.
        self.ctrl = ctrl
        self.ctrl_size = ctrl_size
        self.wire_bytes = (ctrl_size if kind == "ctrl" else length) + SEGMENT_OVERHEAD
        self.end = seq + length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "data":
            return f"<TcpSegment data [{self.seq},{self.end}) ack={self.cum_ack}>"
        if self.kind == "ack":
            return f"<TcpSegment ack={self.cum_ack} sack={self.sack_blocks}>"
        return f"<TcpSegment ctrl {self.ctrl}>"


class SegmentRecord:
    """Sender-side bookkeeping for one transmitted data segment."""

    __slots__ = ("seq", "length", "sent_time", "pieces", "retx_count",
                 "nack_bytes", "declared_lost", "retx_edge", "end")

    def __init__(self, seq: int, length: int, sent_time: float,
                 pieces: List[Piece], retx_count: int = 0,
                 nack_bytes: int = 0, declared_lost: bool = False,
                 retx_edge: int = 0) -> None:
        self.seq = seq
        self.length = length
        self.sent_time = sent_time
        self.pieces = pieces
        self.retx_count = retx_count
        #: Bytes SACKed above this segment when it was declared lost (the
        #: reordering-depth evidence DSACK adaptation uses).
        self.nack_bytes = nack_bytes
        self.declared_lost = declared_lost
        #: ``snd_nxt`` at the moment of the last retransmission.  A
        #: retransmitted segment may only be re-declared lost from SACK
        #: evidence *above this edge* — i.e. acknowledgements of data sent
        #: after the retransmission (RFC 6675 spirit; prevents instant
        #: re-loss from SACKs of packets that were already in flight).
        self.retx_edge = retx_edge
        self.end = seq + length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SegmentRecord [{self.seq},{self.end}) retx={self.retx_count}>"

"""TCP wire elements: segments with cumulative ACK, SACK and DSACK.

As with QUIC, only performance-relevant structure is modelled: sequence
ranges, ACK fields, advertised window.  A data segment also carries its
"pieces" — the mapping from byte ranges to application messages — which
stands in for HTTP/2 frame headers inside the TLS stream (the receiver
can only use them once the bytes are *in order*: that is TCP's
head-of-line blocking, modelled exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

#: TCP+TLS per-segment overhead beyond the network HEADER_BYTES (TLS
#: record framing etc.); small and identical for both directions.
SEGMENT_OVERHEAD = 12


@dataclass
class Piece:
    """``length`` bytes of message ``msg_id`` within a segment.

    ``total`` and ``meta`` ride on a message's first piece so the receiver
    learns the message's size and application metadata (an HTTP/2 HEADERS
    frame, in effect).
    """

    msg_id: int
    length: int
    total: Optional[int] = None
    meta: Any = None
    #: True on a message's final piece (HTTP/2 END_STREAM flag).
    fin: bool = False


@dataclass
class TcpSegment:
    """One TCP segment (data, pure ACK, or handshake control)."""

    conn_id: str
    kind: str  # "data" | "ack" | "ctrl"
    #: Data fields.
    seq: int = 0
    length: int = 0
    pieces: List[Piece] = field(default_factory=list)
    #: ACK fields (piggybacked on data too).
    cum_ack: Optional[int] = None
    sack_blocks: Tuple[Tuple[int, int], ...] = ()
    dsack: Optional[Tuple[int, int]] = None
    rwnd: Optional[int] = None
    #: Handshake fields.
    ctrl: Optional[str] = None
    ctrl_size: int = 0

    @property
    def wire_bytes(self) -> int:
        if self.kind == "ctrl":
            return self.ctrl_size + SEGMENT_OVERHEAD
        return self.length + SEGMENT_OVERHEAD

    @property
    def end(self) -> int:
        return self.seq + self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "data":
            return f"<TcpSegment data [{self.seq},{self.end}) ack={self.cum_ack}>"
        if self.kind == "ack":
            return f"<TcpSegment ack={self.cum_ack} sack={self.sack_blocks}>"
        return f"<TcpSegment ctrl {self.ctrl}>"


@dataclass
class SegmentRecord:
    """Sender-side bookkeeping for one transmitted data segment."""

    seq: int
    length: int
    sent_time: float
    pieces: List[Piece]
    retx_count: int = 0
    #: Bytes SACKed above this segment when it was declared lost (the
    #: reordering-depth evidence DSACK adaptation uses).
    nack_bytes: int = 0
    declared_lost: bool = False
    #: ``snd_nxt`` at the moment of the last retransmission.  A
    #: retransmitted segment may only be re-declared lost from SACK
    #: evidence *above this edge* — i.e. acknowledgements of data sent
    #: after the retransmission (RFC 6675 spirit; prevents instant
    #: re-loss from SACKs of packets that were already in flight).
    retx_edge: int = 0

    @property
    def end(self) -> int:
        return self.seq + self.length

"""TCP(+TLS) configuration (the paper's baseline stack, Sec. 3.1).

The paper's "TCP" is HTTP/2 over TLS over Linux TCP Cubic with default
settings (kernel 4.4 server).  The corresponding knobs:

* Cubic with ``N = 1`` (no multi-connection emulation), no MACW, no
  pacing (pre-``fq`` default), IW10.
* Delayed ACKs (every 2nd segment or 40 ms), cumulative ACK + SACK.
* Fast retransmit at ``dupthresh`` duplicate notifications with
  DSACK-driven adaptation (RR-TCP) — the mechanism the paper credits for
  TCP's robustness to reordering (Sec. 5.2, Fig. 10).
* RTO floor 200 ms.
* One-RTT TCP handshake plus a two-RTT TLS 1.2 exchange before the first
  request byte (versus QUIC's 0 RTT).
* Tail loss probes exist in Linux 4.4 but the paper attributes TLP to
  QUIC's advantage, so they default off here; the ablation bench flips
  ``tlp_enabled``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..transport.cc.cubic import CubicConfig


def default_tcp_cubic() -> CubicConfig:
    """Linux-flavoured Cubic: IW10, no MACW, no pacing, less sensitive
    HyStart (Linux's HyStart historically triggers less often than
    Chromium's in these regimes)."""
    return CubicConfig(
        initial_cwnd_packets=10,
        max_cwnd_packets=None,
        num_emulated_connections=1,
        pacing_gain_slow_start=None,
        pacing_gain_ca=None,
        hybrid_slow_start=True,
        hss_threshold_divisor=4.0,
    )


@dataclass
class TcpConfig:
    """All tunables of one TCP endpoint pair."""

    mss: int = 1350
    cc: CubicConfig = field(default_factory=default_tcp_cubic)
    #: Fast-retransmit duplicate threshold and DSACK adaptation.
    dupthresh: int = 3
    dsack: bool = True
    dupthresh_cap: int = 100
    #: Delayed-ACK policy.
    ack_every_n: int = 2
    delayed_ack_timeout: float = 0.040
    max_sack_blocks: int = 3
    #: Retransmission timer.
    min_rto: float = 0.2
    #: Tail loss probes (off: see module docstring).
    tlp_enabled: bool = False
    max_tail_loss_probes: int = 2
    #: Receive buffer (kernel socket buffer; autotuned-large default).
    receive_buffer: int = 6 * 1024 * 1024
    #: Handshake: 1 RTT TCP + ``tls_rtts`` RTTs of TLS before data.
    tls_rtts: int = 2
    #: Wire sizes of the TLS flights.
    client_hello_bytes: int = 350
    server_hello_bytes: int = 3600
    client_finished_bytes: int = 300
    server_finished_bytes: int = 300
    #: HTTP/2-style response interleaving: "roundrobin" multiplexes DATA
    #: chunks fairly across in-progress responses; "fifo" finishes one
    #: response before the next.
    scheduler: str = "roundrobin"

    def with_(self, **changes) -> "TcpConfig":
        return replace(self, **changes)


def tcp_config(**changes) -> TcpConfig:
    """The paper's baseline TCP stack, with optional overrides."""
    return TcpConfig().with_(**changes) if changes else TcpConfig()

"""TCP connection with TLS handshake and HTTP/2-style message framing.

This is the paper's baseline stack ("TCP" = HTTP/2 + TLS + Linux TCP
Cubic).  The behaviours the paper contrasts with QUIC are modelled
exactly:

* **3 RTTs before the first request byte** (TCP handshake + 2-RTT TLS).
* **One ordered byte stream**: application messages (HTTP/2 frames) are
  multiplexed into a single sequence space; a loss anywhere blocks
  delivery of *every* later byte until repaired — transport-level
  head-of-line blocking.
* **Cumulative ACK + SACK with delayed ACKs**: fewer, coarser RTT
  samples; Karn's rule forbids samples from retransmitted segments (ACK
  ambiguity).
* **FACK-style fast retransmit with DSACK adaptation** (RR-TCP): a
  duplicate arrival tells the sender its retransmit was spurious and the
  duplicate threshold rises to the observed reordering depth — why TCP
  tolerates the reordering that breaks QUIC (Fig. 10).
* **RTO with backoff**, marking outstanding data lost (Linux behaviour).

The congestion controller is the same :class:`CubicCC` class QUIC uses,
configured Linux-style (IW10, N=1, no pacing, no MACW), so performance
differences between the protocols come from how the transports *drive*
Cubic — the paper's central methodological point.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..core.instrumentation import Trace
from ..devices import DESKTOP, DeviceProfile, PacketProcessor
from ..netem.node import Node
from ..netem.packet import Packet
from ..netem.sim import Event, Simulator
from ..transport.base import TransportEndpoint, fresh_conn_id
from ..transport.cc.cubic import CubicCC
from ..transport.rtt import RttEstimator
from ..transport.util import RangeSet
from .config import TcpConfig
from .segment import Piece, SegmentRecord, TcpSegment

RequestHandler = Callable[[Any], int]
ResponseCallback = Callable[[int, Any, float], None]

#: Handshake retry timer (initial; doubles).
HANDSHAKE_RTO = 1.0
#: Wire size of a request message head.
DEFAULT_REQUEST_BYTES = 300


class TcpStats:
    """Per-connection counters for tests and root-cause analysis."""

    def __init__(self) -> None:
        self.segments_sent = 0
        self.bytes_sent = 0
        self.acks_sent = 0
        self.retransmits = 0
        self.spurious_retransmits = 0
        self.rto_fires = 0
        self.dsacks_sent = 0
        self.segments_received = 0
        self.duplicate_segments = 0


class _OutMessage:
    """Sender-side application message (one HTTP/2 frame sequence)."""

    __slots__ = ("msg_id", "total", "remaining", "meta", "first_piece_sent",
                 "finalized", "fin_sent")

    def __init__(self, msg_id: int, total: int, meta: Any,
                 finalized: bool = True) -> None:
        self.msg_id = msg_id
        self.total = total
        self.remaining = total
        self.meta = meta
        self.first_piece_sent = False
        #: False while a streaming (proxy) response may still grow.
        self.finalized = finalized
        self.fin_sent = False


class _InMessage:
    """Receiver-side reassembled message."""

    __slots__ = ("msg_id", "total", "meta", "delivered", "complete", "fin_seen")

    def __init__(self, msg_id: int) -> None:
        self.msg_id = msg_id
        self.total: Optional[int] = None
        self.meta: Any = None
        self.delivered = 0
        self.complete = False
        self.fin_seen = False


class TcpConnection(TransportEndpoint):
    """One endpoint of a TCP+TLS connection (client or server role)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        conn_id: str,
        peer_addr: str,
        config: TcpConfig,
        role: str,
        *,
        device: DeviceProfile = DESKTOP,
        trace: Optional[Trace] = None,
        request_handler: Optional[RequestHandler] = None,
        server_noise: float = 0.001,
        rng: Optional[random.Random] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError("role must be 'client' or 'server'")
        super().__init__(sim, node, conn_id, peer_addr, flow_id=flow_id)
        self.config = config
        self.role = role
        self.device = device
        self.rng = rng if rng is not None else random.Random(0)
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.stats = TcpStats()
        self.rtt = RttEstimator(initial_rtt=0.1)
        self.cc = CubicCC(config.cc, self.rtt, trace=self.trace)
        self.cc.on_receiver_buffer(config.receive_buffer)

        # --- handshake -----------------------------------------------------
        self._ready = role == "server"
        self._handshake_stage = "idle"
        self._handshake_timer: Optional[Event] = None
        self._handshake_retries = 0
        self.on_ready: Optional[Callable[[float], None]] = None
        self.ready_time: Optional[float] = None

        # --- send state ------------------------------------------------------
        self._snd_nxt = 0
        self._snd_una = 0
        self._sent: Dict[int, SegmentRecord] = {}
        self._sacked = RangeSet()
        self._highest_sacked = 0
        self.bytes_in_flight = 0
        self._retx_queue: Deque[SegmentRecord] = deque()
        self._msg_queue: Deque[_OutMessage] = deque()
        self._out_messages: Dict[int, _OutMessage] = {}
        self._next_msg_id = 1 if role == "client" else 1_000_001
        self._peer_rwnd = config.receive_buffer
        self._send_scheduled = False
        self._recovery_until: Optional[int] = None
        self._retx_timer: Optional[Event] = None
        self._rto_backoff = 0
        self._tlp_count = 0
        self._sent_any_data = False
        self.dupthresh = config.dupthresh
        #: nack depth recorded for recently declared-lost segments.
        self._lost_depths: Dict[int, int] = {}
        #: Loss-scan floor: holes below are all already declared lost.
        self._loss_floor = 0
        #: Retransmitted-and-live segments awaiting a re-loss verdict.
        self._retx_live: Dict[int, SegmentRecord] = {}

        # --- receive state ----------------------------------------------------
        self._rcv_ranges = RangeSet()
        self._rcv_total = 0
        self._rcv_frontier = 0
        self._pieces_at: Dict[int, Piece] = {}
        self._piece_walk = 0
        self._in_messages: Dict[int, _InMessage] = {}
        self._app_processed = 0
        self._ack_pending = 0
        self._ack_timer: Optional[Event] = None
        self._pending_dsack: Optional[Tuple[int, int]] = None
        #: Sequence numbers of the most recent data arrivals (SACK source).
        self._recent_arrivals: Deque[int] = deque(maxlen=8)
        self._last_advertised_rwnd = config.receive_buffer
        self._processor = PacketProcessor(
            sim, device.packet_cost("tcp"), self._process_delivery,
            rng=random.Random(self.rng.randrange(1 << 30)),
        )

        # --- application ------------------------------------------------------
        self.request_handler = request_handler
        self.server_noise = server_noise
        #: Optional hook fired as message bytes are delivered in order:
        #: ``on_progress(msg_id, newly_delivered_bytes, meta)``.
        self.on_progress: Optional[Callable[[int, int, Any], None]] = None
        #: Optional deferred request hook: ``on_request(msg_id, meta)``
        #: replaces ``request_handler`` (used by proxies).
        self.on_request: Optional[Callable[[int, Any], None]] = None
        self._response_cbs: Dict[int, ResponseCallback] = {}
        self.delivery_log: List[Tuple[float, int]] = []
        self._delivered_app_bytes = 0

    # ==================================================================
    # public API
    # ==================================================================
    def connect(self, on_ready: Optional[Callable[[float], None]] = None) -> None:
        """Run the TCP+TLS handshake (client only)."""
        if self.role != "client":
            raise RuntimeError("only clients connect()")
        if self._handshake_stage != "idle":
            return
        self.on_ready = on_ready
        self._advance_handshake("syn")

    def request(self, meta: Any, on_complete: ResponseCallback,
                request_bytes: int = DEFAULT_REQUEST_BYTES) -> None:
        """Issue one request over the shared connection (HTTP/2 style)."""
        if self.role != "client":
            raise RuntimeError("only clients issue requests")
        msg_id = self.send_message(request_bytes, ("req", None, meta))
        self._response_cbs[msg_id] = on_complete

    def send_message(self, total_bytes: int, meta: Any) -> int:
        """Queue an application message onto the byte stream."""
        return self._enqueue_message(total_bytes, meta, finalized=True)

    def send_streaming_message(self, meta: Any) -> int:
        """Open a message whose length is not yet known (proxy pass-through)."""
        return self._enqueue_message(0, meta, finalized=False)

    def message_append(self, msg_id: int, nbytes: int) -> None:
        """Append bytes to a streaming message."""
        msg = self._out_messages.get(msg_id)
        if msg is None:
            raise KeyError(f"no open message {msg_id}")
        if msg.finalized:
            raise RuntimeError("cannot append to a finalized message")
        if nbytes <= 0:
            return
        msg.total += nbytes
        msg.remaining += nbytes
        if msg not in self._msg_queue:
            self._msg_queue.append(msg)
        self._wake_sender()

    def message_finish(self, msg_id: int) -> None:
        """Close a streaming message; its END_STREAM marker will be sent.

        If all appended data already left, a 1-byte trailer (the HTTP/2
        frame-header stand-in) carries the marker.
        """
        msg = self._out_messages.get(msg_id)
        if msg is None or msg.finalized:
            return
        msg.finalized = True
        if msg.remaining <= 0 and not msg.fin_sent:
            msg.total += 1
            msg.remaining += 1
        if msg.remaining > 0 and msg not in self._msg_queue:
            self._msg_queue.append(msg)
        self._wake_sender()

    def _enqueue_message(self, total_bytes: int, meta: Any,
                         finalized: bool) -> int:
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        if finalized and total_bytes <= 0:
            total_bytes = 1  # bare END_STREAM still occupies a frame byte
        msg = _OutMessage(msg_id, total_bytes, meta, finalized=finalized)
        self._out_messages[msg_id] = msg
        self._msg_queue.append(msg)
        self._wake_sender()
        return msg_id

    @property
    def smoothed_rtt(self) -> float:
        return self.rtt.smoothed_rtt()

    @property
    def handshake_ready_time(self) -> Optional[float]:
        """When the connection became usable (None while handshaking).

        Mirrors the QUIC attribute so page loaders treat both transports
        uniformly.
        """
        return self.ready_time

    # ==================================================================
    # handshake (TCP 3WHS + TLS 1.2, paper Sec. 3.1)
    # ==================================================================
    _CLIENT_FLOW = ("syn", "client_hello", "client_finished")
    _REPLY_OF = {
        "syn": "synack",
        "client_hello": "server_hello",
        "client_finished": "server_finished",
    }

    def _advance_handshake(self, stage: str) -> None:
        self._handshake_stage = stage
        self._handshake_retries = 0
        self._emit_ctrl(stage)
        self._arm_handshake_timer()

    def _ctrl_size(self, kind: str) -> int:
        cfg = self.config
        return {
            "syn": 40,
            "synack": 40,
            "client_hello": cfg.client_hello_bytes,
            "server_hello": cfg.server_hello_bytes,
            "client_finished": cfg.client_finished_bytes,
            "server_finished": cfg.server_finished_bytes,
        }[kind]

    def _emit_ctrl(self, kind: str) -> None:
        """Send a handshake message, fragmented to MSS-sized packets.

        Only the final fragment carries the semantic ``kind`` (the peer
        acts once the message completes); a multi-packet ServerHello
        otherwise becomes a jumbo frame that droptail queues always shed.
        """
        size = self._ctrl_size(kind)
        mss = self.config.mss
        while size > mss:
            frag = TcpSegment(self.conn_id, "ctrl", ctrl=kind + ":frag",
                              ctrl_size=mss)
            self.stats.segments_sent += 1
            self.emit(frag, frag.wire_bytes)
            size -= mss
        seg = TcpSegment(self.conn_id, "ctrl", ctrl=kind, ctrl_size=size)
        self.stats.segments_sent += 1
        self.emit(seg, seg.wire_bytes)

    def _arm_handshake_timer(self) -> None:
        if self._handshake_timer is not None:
            self._handshake_timer.cancel()
        delay = HANDSHAKE_RTO * (2 ** self._handshake_retries)
        self._handshake_timer = self.sim.schedule(delay, self._handshake_retry)

    def _handshake_retry(self) -> None:
        if self._ready or self._handshake_stage == "idle":
            return
        self._handshake_retries += 1
        self._emit_ctrl(self._handshake_stage)
        self._arm_handshake_timer()

    def _on_ctrl(self, now: float, seg: TcpSegment) -> None:
        kind = seg.ctrl
        if kind.endswith(":frag"):
            return  # leading fragment; the final piece drives the flow
        if kind == "rst":
            self.close(notify_peer=False)
            return
        if self.role == "server":
            if kind == "syn":
                self._emit_ctrl("synack")
            elif kind == "client_hello":
                self.sim.post(self.device.crypto_setup_cost,
                                  self._emit_ctrl, "server_hello")
            elif kind == "client_finished":
                self._emit_ctrl("server_finished")
            return
        # Client side: each reply advances the flow.
        expected = self._REPLY_OF.get(self._handshake_stage)
        if kind != expected:
            return
        if kind == "synack":
            if self.config.tls_rtts <= 0:
                self._client_ready(now)
            else:
                self._advance_handshake("client_hello")
        elif kind == "server_hello":
            if self.config.tls_rtts <= 1:
                self._client_ready(now)
            else:
                self.sim.post(self.device.crypto_setup_cost,
                                  self._advance_handshake, "client_finished")
        elif kind == "server_finished":
            self._client_ready(now)

    def _client_ready(self, now: float) -> None:
        if self._ready:
            return
        self._ready = True
        self._handshake_stage = "done"
        self.ready_time = now
        if self._handshake_timer is not None:
            self._handshake_timer.cancel()
            self._handshake_timer = None
        if self.on_ready is not None:
            self.on_ready(now)
        self._wake_sender()

    # ==================================================================
    # send path
    # ==================================================================
    def _wake_sender(self) -> None:
        if not self._send_scheduled and not self.closed:
            self._send_scheduled = True
            self.sim.post(0.0, self._send_loop)

    def _send_loop(self) -> None:
        self._send_scheduled = False
        if self.closed or not self._ready:
            return
        sent = False
        while True:
            budget = self.cc.can_send_bytes(self.bytes_in_flight)
            if budget < 1:
                break
            if self._retx_queue:
                record = self._retx_queue.popleft()
                stale = (
                    not record.declared_lost
                    or record.end <= self._snd_una
                    or self._sacked.covers(record.seq, record.end)
                )
                if stale:
                    continue
                self._transmit_record(record, retransmit=True, arm_timer=False)
                sent = True
                continue
            if not self._has_new_data():
                break
            if self._snd_nxt - self._snd_una >= self._peer_rwnd:
                break  # receiver-window limited
            segment_len = min(self.config.mss, budget)
            record = self._segmentize(segment_len)
            if record is None:
                break
            self._transmit_record(record, retransmit=False, arm_timer=False)
            sent = True
        if not sent:
            self._maybe_signal_app_limited()
        else:
            # One timer arming per burst: sim time does not advance inside
            # the loop, so this deadline equals the last per-segment one.
            self._set_retx_timer()

    def _has_new_data(self) -> bool:
        # Plain loop, not any(genexpr): called on every ACK and every
        # send-loop pass, and the generator frame shows up in profiles.
        for m in self._msg_queue:
            if m.remaining > 0:
                return True
        return False

    def _maybe_signal_app_limited(self) -> None:
        if not self._sent_any_data:
            return
        if self.bytes_in_flight < self.cc.cwnd and not self._retx_queue:
            self.cc.on_application_limited(self.sim.now)

    def _segmentize(self, max_len: int) -> Optional[SegmentRecord]:
        """Carve the next segment from queued messages (HTTP/2 scheduler)."""
        pieces: List[Piece] = []
        remaining = max_len
        while remaining > 0 and self._msg_queue:
            msg = self._msg_queue[0]
            if msg.remaining <= 0:
                self._msg_queue.popleft()
                continue
            take = min(msg.remaining, remaining)
            piece = Piece(msg.msg_id, take)
            if not msg.first_piece_sent:
                piece.total = msg.total if msg.finalized else None
                piece.meta = msg.meta
                msg.first_piece_sent = True
            pieces.append(piece)
            msg.remaining -= take
            remaining -= take
            if msg.remaining <= 0:
                if msg.finalized:
                    piece.fin = True
                    msg.fin_sent = True
                    self._out_messages.pop(msg.msg_id, None)
                self._msg_queue.popleft()
            elif self.config.scheduler == "roundrobin":
                self._msg_queue.rotate(-1)
        if not pieces:
            return None
        length = max_len - remaining
        record = SegmentRecord(self._snd_nxt, length, self.sim.now, pieces)
        self._snd_nxt += length
        self._sent[record.seq] = record
        return record

    def _transmit_record(self, record: SegmentRecord, *, retransmit: bool,
                         arm_timer: bool = True) -> None:
        now = self.sim.now
        if retransmit:
            record.retx_count += 1
            record.declared_lost = False
            record.sent_time = now
            record.nack_bytes = 0
            record.retx_edge = self._snd_nxt
            # Re-loss of this copy is judged against evidence above its
            # retx edge, via the (small) retransmission watch set.
            self._retx_live[record.seq] = record
            self._sent.setdefault(record.seq, record)
            self.stats.retransmits += 1
        if not self._sent_any_data:
            self._sent_any_data = True
            self.cc.on_connection_start(now)
        self.bytes_in_flight += record.length
        self.cc.on_packet_sent(now, record.length, retransmit)
        seg = TcpSegment(
            self.conn_id, "data", seq=record.seq, length=record.length,
            pieces=record.pieces, cum_ack=self._rcv_frontier,
            rwnd=self._advertise_rwnd(),
        )
        self.stats.segments_sent += 1
        self.stats.bytes_sent += record.length
        self.emit(seg, seg.wire_bytes)
        if arm_timer:
            self._set_retx_timer()

    # ==================================================================
    # retransmission timer (RTO; optional TLP ablation)
    # ==================================================================
    def _set_retx_timer(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None
        if self.bytes_in_flight <= 0 or self.closed:
            return
        srtt = self.rtt.smoothed_rtt()
        if self.config.tlp_enabled and self._tlp_count < self.config.max_tail_loss_probes:
            delay = max(2.0 * srtt, 1.5 * srtt + self.config.delayed_ack_timeout)
            kind = "tlp"
        else:
            delay = self.rtt.retransmission_timeout(self.config.min_rto)
            delay *= 2 ** min(self._rto_backoff, 6)
            kind = "rto"
        self._retx_timer = self.sim.schedule(delay, self._retx_timer_fired, kind)

    def _retx_timer_fired(self, kind: str) -> None:
        self._retx_timer = None
        if self.bytes_in_flight <= 0 or self.closed:
            return
        now = self.sim.now
        if kind == "tlp":
            self._tlp_count += 1
            self.cc.on_tail_loss_probe(now)
            newest = max(self._sent, default=None)
            if newest is not None:
                record = self._sent[newest]
                self.bytes_in_flight -= record.length
                self._transmit_record(record, retransmit=True)
            self._set_retx_timer()
            return
        self._rto_backoff += 1
        self.stats.rto_fires += 1
        self.trace.log(now, "rto")
        self.cc.on_retransmission_timeout(now)
        # Linux: everything un-SACKed and outstanding is marked lost.
        self._retx_queue.clear()
        for seq in sorted(self._sent):
            record = self._sent[seq]
            if self._sacked.covers(record.seq, record.end):
                continue
            if not record.declared_lost:
                record.declared_lost = True
                self.bytes_in_flight -= record.length
            self._retx_queue.append(record)
        self.bytes_in_flight = max(self.bytes_in_flight, 0)
        self._recovery_until = self._snd_nxt
        self._wake_sender()
        self._set_retx_timer()

    # ==================================================================
    # receive path
    # ==================================================================
    def on_packet(self, packet: Packet) -> None:
        seg: TcpSegment = packet.payload
        now = self.sim.now
        if seg.kind == "ctrl":
            self._on_ctrl(now, seg)
            return
        # "Kernel" duties happen inline: ACK processing and generation.
        if seg.cum_ack is not None:
            self._on_ack_info(now, seg)
        if seg.kind == "data":
            self._on_data_segment(now, seg)

    def _on_data_segment(self, now: float, seg: TcpSegment) -> None:
        self.stats.segments_received += 1
        duplicate = self._rcv_ranges.covers(seg.seq, seg.end)
        if duplicate:
            self.stats.duplicate_segments += 1
            if self.config.dsack:
                self._pending_dsack = (seg.seq, seg.end)
            self._send_ack_now(now)
            return
        # Store piece metadata (usable only once bytes are in order).
        offset = seg.seq
        for piece in seg.pieces:
            self._pieces_at.setdefault(offset, piece)
            offset += piece.length
        old_frontier = self._rcv_frontier
        self._rcv_total += self._rcv_ranges.add(seg.seq, seg.end)
        self._recent_arrivals.appendleft(seg.seq)
        self._rcv_frontier = self._rcv_ranges.contiguous_from(0)
        delta = self._rcv_frontier - old_frontier
        if delta > 0:
            # In-order bytes head to the application (device CPU model).
            self._processor.submit(delta)
        # RFC 5681: ACK immediately for out-of-order segments and while
        # holes remain (these are the peer's duplicate/SACK notifications).
        disordered = seg.seq != old_frontier or len(self._rcv_ranges) > 1
        if disordered or self._pending_dsack:
            self._send_ack_now(now)
        else:
            self._ack_pending += 1
            if self._ack_pending >= self.config.ack_every_n:
                self._send_ack_now(now)
            elif self._ack_timer is None:
                self._ack_timer = self.sim.schedule(
                    self.config.delayed_ack_timeout, self._ack_timer_fired
                )

    def _ack_timer_fired(self) -> None:
        self._ack_timer = None
        if self._ack_pending:
            self._send_ack_now(self.sim.now)

    def _advertise_rwnd(self) -> int:
        rwnd = self.config.receive_buffer - (self._rcv_total - self._app_processed)
        if rwnd < 0:
            rwnd = 0
        self._last_advertised_rwnd = rwnd
        return rwnd

    def _send_ack_now(self, now: float) -> None:
        self._ack_pending = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        # SACK blocks (RFC 2018): the ranges containing the most recently
        # received segments, most recent first.  Blocks can only exist
        # when coverage extends beyond the in-order frontier, so the
        # no-holes common case skips the scan entirely.
        blocks: List[Tuple[int, int]] = []
        max_covered = self._rcv_ranges.max_covered()
        if max_covered is not None and max_covered > self._rcv_frontier:
            blocks = self._sack_blocks()
        seg = TcpSegment(
            self.conn_id, "ack",
            cum_ack=self._rcv_frontier,
            sack_blocks=tuple(blocks),
            dsack=self._pending_dsack,
            rwnd=self._advertise_rwnd(),
        )
        if self._pending_dsack is not None:
            self.stats.dsacks_sent += 1
            self._pending_dsack = None
        self.stats.acks_sent += 1
        self.emit(seg, 52)

    def _sack_blocks(self) -> List[Tuple[int, int]]:
        blocks: List[Tuple[int, int]] = []
        for seq in self._recent_arrivals:
            containing = self._rcv_ranges.containing(seq)
            if containing is None or containing[1] <= self._rcv_frontier:
                continue
            block = (max(containing[0], self._rcv_frontier), containing[1])
            if block not in blocks:
                blocks.append(block)
            if len(blocks) >= self.config.max_sack_blocks:
                break
        return blocks

    # ------------------------------------------------------------------
    # application delivery (through the device CPU model)
    # ------------------------------------------------------------------
    def _process_delivery(self, delta: int) -> None:
        self._app_processed += delta
        self._delivered_app_bytes += delta
        now = self.sim.now
        self.delivery_log.append((now, self._delivered_app_bytes))
        self._walk_pieces(now)
        # Window update if the advertised window had collapsed.
        if self._last_advertised_rwnd < 4 * self.config.mss:
            self._send_ack_now(now)

    def _walk_pieces(self, now: float) -> None:
        """Credit fully-processed bytes to their messages, fire completions."""
        while self._piece_walk < self._app_processed:
            piece = self._pieces_at.get(self._piece_walk)
            if piece is None:
                break  # metadata not yet arrived (shouldn't happen in order)
            if self._piece_walk + piece.length > self._app_processed:
                break
            del self._pieces_at[self._piece_walk]
            self._piece_walk += piece.length
            msg = self._in_messages.get(piece.msg_id)
            if msg is None:
                msg = _InMessage(piece.msg_id)
                self._in_messages[piece.msg_id] = msg
            if piece.total is not None:
                msg.total = piece.total
            if piece.meta is not None:
                msg.meta = piece.meta
            msg.delivered += piece.length
            if piece.fin:
                msg.fin_seen = True
            if self.on_progress is not None and piece.length:
                self.on_progress(piece.msg_id, piece.length, msg.meta)
            if not msg.complete and msg.fin_seen:
                # In-order delivery: the fin piece is necessarily last.
                msg.complete = True
                self._on_message_complete(now, msg)

    def _on_message_complete(self, now: float, msg: _InMessage) -> None:
        kind = msg.meta[0] if isinstance(msg.meta, tuple) else None
        if self.role == "server" and kind == "req":
            if self.request_handler is None and self.on_request is None:
                return
            _, _, app_meta = msg.meta
            delay = self.rng.uniform(0.0, self.server_noise)
            self.sim.post(delay, self._serve, msg.msg_id, app_meta)
        elif self.role == "client" and kind == "resp":
            _, req_msg_id, app_meta = msg.meta
            cb = self._response_cbs.pop(req_msg_id, None)
            if cb is not None:
                cb(req_msg_id, app_meta, now)

    def _serve(self, req_msg_id: int, app_meta: Any) -> None:
        if self.on_request is not None:
            self.on_request(req_msg_id, app_meta)
            return
        size = self.request_handler(app_meta)
        if size is None:
            # Deferred response: the application (e.g. a proxy) answers
            # later via respond() or open_streaming_response().
            return
        self.send_message(size, ("resp", req_msg_id, app_meta))

    def respond(self, req_msg_id: int, size: int, meta: Any = None) -> None:
        """Deferred-response API mirroring QuicConnection.respond."""
        self.send_message(size, ("resp", req_msg_id, meta))

    def open_streaming_response(self, req_msg_id: int, meta: Any = None) -> int:
        """Start a response of unknown length; returns its message id."""
        return self.send_streaming_message(("resp", req_msg_id, meta))

    # ==================================================================
    # ACK processing (sender side)
    # ==================================================================
    def _on_ack_info(self, now: float, seg: TcpSegment) -> None:
        if seg.rwnd is not None:
            self._peer_rwnd = seg.rwnd
        cum = seg.cum_ack
        was_cwnd_limited = self.bytes_in_flight >= self.cc.cwnd - self.config.mss
        newly_acked_bytes = 0
        rtt_candidate: Optional[SegmentRecord] = None
        spurious = False
        if seg.dsack is not None:
            spurious = self._on_dsack(now, seg.dsack)
        # --- cumulative ACK advance ------------------------------------
        if cum > self._snd_una:
            walk = self._snd_una
            sacked = self._sacked if self._sacked else None
            while walk < cum:
                record = self._sent.pop(walk, None)
                if record is None:
                    break
                fully_sacked = (sacked is not None
                                and sacked.covers(record.seq, record.end))
                if not record.declared_lost and not fully_sacked:
                    self.bytes_in_flight -= record.length
                    newly_acked_bytes += record.length
                elif fully_sacked and not record.declared_lost:
                    pass  # already credited when SACKed
                if record.retx_count == 0:
                    rtt_candidate = record
                walk = record.end
            self._snd_una = cum
            self._rto_backoff = 0
        # --- SACK processing ----------------------------------------------
        newly_sacked = 0
        for lo, hi in seg.sack_blocks:
            newly_sacked += self._apply_sack(lo, hi)
        newly_acked_bytes += newly_sacked
        if newly_sacked and self._highest_sacked > self._snd_una:
            self._detect_losses(now, newly_sacked)
        if newly_acked_bytes <= 0 and not spurious:
            self._post_ack(now)
            return
        # Probe-state resolution.
        if self._tlp_count:
            self._tlp_count = 0
            self.cc.on_tlp_resolved(now)
        self.cc.on_rto_resolved(now)
        # RTT sample (Karn: never from retransmitted segments).
        if rtt_candidate is not None:
            self.rtt.on_sample(now - rtt_candidate.sent_time, now)
            if self.rtt.latest is not None:
                self.cc.on_rtt_sample(now, self.rtt.latest)
        # Recovery exit.
        if (self.cc.in_recovery and self._recovery_until is not None
                and self._snd_una >= self._recovery_until):
            self.cc.on_recovery_exit(now)
            self._recovery_until = None
        if newly_acked_bytes > 0:
            cwnd_limited = was_cwnd_limited or bool(self._sent) or self._has_new_data()
            self.cc.on_ack(now, newly_acked_bytes, cwnd_limited=cwnd_limited)
        self._post_ack(now)

    def _post_ack(self, now: float) -> None:
        if self._snd_una >= self._snd_nxt and not self._retx_queue:
            if self._retx_timer is not None:
                self._retx_timer.cancel()
                self._retx_timer = None
        else:
            self._set_retx_timer()
        self._wake_sender()

    def _apply_sack(self, lo: int, hi: int) -> int:
        """Mark [lo, hi) SACKed; return bytes newly removed from flight."""
        freed = 0
        for gap_lo, gap_hi in self._sacked.gaps(lo, hi):
            walk = gap_lo
            while walk < gap_hi:
                record = self._sent.get(walk)
                if record is None:
                    break
                if not record.declared_lost:
                    freed += record.length
                    self.bytes_in_flight -= record.length
                walk = record.end
        self._sacked.add(lo, hi)
        if hi > self._highest_sacked:
            self._highest_sacked = hi
        return freed

    def _detect_losses(self, now: float, newly_sacked: int) -> None:
        """FACK-style: holes with >= dupthresh*MSS SACKed above are lost."""
        congestion = False
        # Suffix sums over the SACK scoreboard make each above-the-edge
        # query O(log n) instead of O(n) (recovery can hold thousands of
        # holes, so the naive form is quadratic).
        ranges = self._sacked.ranges()
        suffix = [0] * (len(ranges) + 1)
        for i in range(len(ranges) - 1, -1, -1):
            lo, hi = ranges[i]
            suffix[i] = suffix[i + 1] + (hi - lo)

        import bisect

        def sacked_above(seq: int) -> int:
            i = bisect.bisect_right(ranges, (seq, float("inf")))
            total = suffix[i]
            if i > 0 and ranges[i - 1][1] > seq:
                total += ranges[i - 1][1] - seq
            return total

        threshold = self.dupthresh * self.config.mss

        def judge(record: SegmentRecord) -> None:
            nonlocal congestion
            edge = max(record.end, record.retx_edge)
            sacked_above_edge = sacked_above(edge)
            record.nack_bytes = sacked_above_edge
            if sacked_above_edge >= threshold:
                record.declared_lost = True
                self.bytes_in_flight -= record.length
                self._lost_depths[record.seq] = sacked_above_edge
                self._retx_queue.append(record)
                self._retx_live.pop(record.seq, None)
                self.trace.log(now, "loss", record.seq)
                if (self._recovery_until is None
                        or record.seq >= self._recovery_until):
                    congestion = True

        # (1) Retransmitted segments: re-loss needs evidence above the
        # retransmission edge, which only exists once newer data is SACKed.
        for seq, record in list(self._retx_live.items()):
            if (record.end <= self._snd_una or record.declared_lost
                    or self._sacked.covers(record.seq, record.end)):
                del self._retx_live[seq]
                continue
            if self._highest_sacked <= record.retx_edge:
                continue  # no post-retransmit evidence yet (common case)
            judge(record)
        # (2) Never-retransmitted holes, scanned from the floor.
        start = max(self._snd_una, self._loss_floor)
        first_live: Optional[int] = None
        for gap_lo, gap_hi in self._sacked.gaps(start, self._highest_sacked):
            if sacked_above(gap_lo) < threshold:
                # Later holes have even less SACK evidence above them.
                if first_live is None:
                    first_live = gap_lo
                break
            walk = gap_lo
            while walk < gap_hi:
                record = self._sent.get(walk)
                if record is None:
                    break
                if not record.declared_lost and record.retx_count == 0:
                    judge(record)
                    if not record.declared_lost and first_live is None:
                        first_live = record.seq
                walk = record.end
        # Holes below the floor are declared lost or watched via the
        # retransmission set; skip them on subsequent scans.
        self._loss_floor = first_live if first_live is not None else self._highest_sacked
        if congestion:
            self.cc.on_congestion_event(now, self.bytes_in_flight)
            self._recovery_until = self._snd_nxt
        if len(self._lost_depths) > 1024:
            for seq in sorted(self._lost_depths)[:512]:
                del self._lost_depths[seq]

    def _bytes_sacked_above(self, seq: int) -> int:
        total = 0
        for lo, hi in self._sacked.ranges():
            if hi <= seq:
                continue
            total += hi - max(lo, seq)
        return total

    def _on_dsack(self, now: float, dsack: Tuple[int, int]) -> bool:
        """A duplicate arrival: our retransmission was spurious (RR-TCP)."""
        self.stats.spurious_retransmits += 1
        self.trace.log(now, "false_loss", dsack[0])
        if not self.config.dsack:
            return False
        depth = self._lost_depths.pop(dsack[0], None)
        if depth is not None:
            depth_pkts = depth // self.config.mss + 1
            self.dupthresh = min(max(self.dupthresh, depth_pkts + 1),
                                 self.config.dupthresh_cap)
        return True

    # ------------------------------------------------------------------
    def close(self, notify_peer: bool = True) -> None:
        """Tear the connection down (RST-style when notifying the peer)."""
        if self.closed:
            return
        if notify_peer:
            seg = TcpSegment(self.conn_id, "ctrl", ctrl="rst", ctrl_size=40)
            self.emit(seg, seg.wire_bytes)
        for timer in (self._retx_timer, self._ack_timer, self._handshake_timer):
            if timer is not None:
                timer.cancel()
        self.trace.close(self.sim.now)
        super().close()


def open_tcp_pair(
    sim: Simulator,
    client_node: Node,
    server_node: Node,
    config: TcpConfig,
    *,
    device: DeviceProfile = DESKTOP,
    request_handler: Optional[RequestHandler] = None,
    client_trace: Optional[Trace] = None,
    server_trace: Optional[Trace] = None,
    seed: int = 0,
    server_noise: float = 0.001,
    flow_id: Optional[str] = None,
) -> Tuple[TcpConnection, TcpConnection]:
    """Create a connected client/server TCP endpoint pair."""
    conn_id = fresh_conn_id("tcp")
    rng = random.Random(seed)
    client = TcpConnection(
        sim, client_node, conn_id, server_node.name, config, "client",
        device=device, trace=client_trace,
        rng=random.Random(rng.randrange(1 << 30)), flow_id=flow_id,
    )
    server = TcpConnection(
        sim, server_node, conn_id, client_node.name, config, "server",
        device=DESKTOP, trace=server_trace, request_handler=request_handler,
        rng=random.Random(rng.randrange(1 << 30)), server_noise=server_noise,
        flow_id=flow_id,
    )
    return client, server

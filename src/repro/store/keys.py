"""Canonical run keys: a stable content address for every RunRequest.

The executor made every run a pure function of ``(configuration,
seed)``; this module turns that configuration into a *content address*.
A :class:`~repro.core.executor.RunRequest` is reduced to a canonical,
type-tagged, JSON-serialisable form (:func:`canonical`), combined with a
fingerprint of the source code the run exercises, and hashed into a
:func:`run_key`.  Two guarantees follow:

* the *same logical request* — however it was constructed, in whatever
  process — always maps to the same key;
* *any* change to the request (a config field, the scenario, the seed,
  the device) or to the code it exercises produces a different key, so a
  store lookup can never return a stale result.

The code fingerprint is *per subsystem*: the package is partitioned
into :data:`SUBSYSTEMS` (netem, transport, http, proxy, video, core)
and a request's key covers only the subsystems its scenario / protocol
/ workload actually exercise (:func:`request_subsystems`).  A touch
under ``video/`` therefore leaves a cached PLT sweep's keys unchanged,
while a touch under ``netem/`` invalidates it.  The ``store`` package
and ``cli.py`` are deliberately outside every fingerprint: they cannot
change what a simulation computes, and the key layer's own shape is
versioned explicitly via :data:`KEY_SCHEMA_VERSION`.

The module also provides the JSON codec used by the store backends to
persist :class:`~repro.core.executor.RunRecord` rows
(:func:`request_to_dict` / :func:`request_from_dict`,
:func:`record_to_dict` / :func:`record_from_dict`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Set, Tuple

from ..devices import DEVICE_PROFILES, DeviceProfile
from ..http.objects import WebObject, WebPage
from ..netem.profiles import Scenario
from ..quic.config import QuicConfig
from ..tcp.config import TcpConfig
from ..transport.cc.cubic import CubicConfig
from ..core.executor import ProtocolSpec, RunFailure, RunRecord, RunRequest
from ..core.manyflow import ManyflowConfig

#: Bump when the canonical form itself changes shape, so stores written
#: by older code are invalidated wholesale instead of mis-read.
#: v2: whole-package code fingerprint replaced by per-subsystem
#: composites (see :data:`SUBSYSTEMS`).
#: v3: per-record integrity checksums in the serialized row
#: (:func:`row_check`; verified by ``repro store fsck``).
KEY_SCHEMA_VERSION = 3


# ----------------------------------------------------------------------
# canonicalisation
# ----------------------------------------------------------------------
def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable structure.

    Dataclasses become type-tagged dicts of their fields (so a
    ``QuicConfig`` and a ``TcpConfig`` that happened to share field
    values could never collide); tuples become lists; dict keys are
    emitted sorted by :func:`canonical_json` at dump time.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() is the shortest round-trip form — stable across
        # platforms and processes for CPython floats.
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        payload["__type__"] = type(obj).__name__
        return payload
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, Mapping):
        return {str(key): canonical(value) for key, value in obj.items()}
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r}; run keys only cover "
        f"plain data (dataclasses, numbers, strings, sequences, mappings)")


def canonical_json(obj: Any) -> str:
    """The one true serialisation: sorted keys, no whitespace."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"))


# ----------------------------------------------------------------------
# code fingerprints
# ----------------------------------------------------------------------
#: The package partition: subsystem name -> package-relative entries
#: (directories are walked recursively for ``*.py``).  Everything not
#: listed — the ``store`` package, ``cli.py`` — is outside every
#: fingerprint: those layers cannot change what a simulation computes.
SUBSYSTEMS: Dict[str, Tuple[str, ...]] = {
    "core": ("core", "devices.py", "__init__.py", "__main__.py"),
    "netem": ("netem",),
    # core/models.py is the analytical CC oracle layer: it encodes the
    # kernels' steady-state behaviour, so an edit there must invalidate
    # exactly the transport-keyed cached sweeps (explicit file entries
    # override the owning directory's subsystem).
    "transport": ("transport", "quic", "tcp", "core/models.py"),
    "http": ("http",),
    "proxy": ("proxy",),
    "video": ("video",),
}

#: Subsystems every page-load run exercises: the event loop and drivers
#: (core), the emulated network (netem), a transport stack (transport),
#: and the page model / HTTP layers (http).
_BASE_SUBSYSTEMS: Tuple[str, ...] = ("core", "http", "netem", "transport")

_FINGERPRINT_CACHE: Dict[str, str] = {}
_SUBSYSTEM_CACHE: Dict[str, Dict[str, str]] = {}


def _default_package_dir() -> Path:
    return Path(__file__).resolve().parent.parent


def _hash_tree(digest: "hashlib._Hash", root: Path, paths: Iterable[Path]
               ) -> None:
    for path in paths:
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")


def code_fingerprint(package_dir: Optional[Path] = None) -> str:
    """A sha256 over every ``.py`` file of the ``repro`` package.

    The *whole-package* fingerprint — the coarsest possible invalidation
    signal, kept for pinning a release and for diagnostics.  Run keys
    use the per-subsystem composites (:func:`fingerprint_for`) instead.
    """
    if package_dir is None:
        package_dir = _default_package_dir()
    cache_key = str(package_dir)
    cached = _FINGERPRINT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    _hash_tree(digest, package_dir, sorted(package_dir.rglob("*.py")))
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[cache_key] = fingerprint
    return fingerprint


def subsystem_fingerprints(package_dir: Optional[Path] = None
                           ) -> Dict[str, str]:
    """One sha256 per :data:`SUBSYSTEMS` entry, cached per process.

    Missing entries hash to the digest of nothing, so the function also
    works on partial trees (tests fingerprint synthetic packages).
    """
    if package_dir is None:
        package_dir = _default_package_dir()
    cache_key = str(package_dir)
    cached = _SUBSYSTEM_CACHE.get(cache_key)
    if cached is not None:
        return cached
    # Explicit file entries claim their file away from whatever
    # subsystem owns the enclosing directory (e.g. core/models.py is
    # transport's even though core/ is walked for "core").
    claimed: Dict[Path, str] = {}
    for name, entries in SUBSYSTEMS.items():
        for entry in entries:
            target = package_dir / entry
            if target.is_file():
                claimed[target] = name
    fingerprints: Dict[str, str] = {}
    for name, entries in SUBSYSTEMS.items():
        digest = hashlib.sha256()
        for entry in entries:
            target = package_dir / entry
            if target.is_dir():
                files = [path for path in sorted(target.rglob("*.py"))
                         if claimed.get(path, name) == name]
                _hash_tree(digest, package_dir, files)
            elif target.is_file():
                _hash_tree(digest, package_dir, [target])
        fingerprints[name] = digest.hexdigest()
    _SUBSYSTEM_CACHE[cache_key] = fingerprints
    return fingerprints


def request_subsystems(request: RunRequest) -> Tuple[str, ...]:
    """The subsystems one run actually exercises (sorted).

    Every page load touches the base set; ``proxied`` runs additionally
    route through the ``proxy`` package.  ``video/`` never backs a
    :class:`RunRequest` (the QoE driver has its own loop), so video
    edits leave every run key unchanged.
    """
    subsystems: Set[str] = set(_BASE_SUBSYSTEMS)
    if request.proxied:
        subsystems.add("proxy")
    return tuple(sorted(subsystems))


def composite_fingerprint(subsystems: Iterable[str],
                          package_dir: Optional[Path] = None) -> str:
    """One hash over the named subsystems' fingerprints."""
    fingerprints = subsystem_fingerprints(package_dir)
    payload = json.dumps(
        {name: fingerprints.get(name, "") for name in sorted(set(subsystems))},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_for(request: RunRequest,
                    package_dir: Optional[Path] = None) -> str:
    """The code fingerprint entering ``request``'s run key."""
    return composite_fingerprint(request_subsystems(request), package_dir)


def achievable_fingerprints(package_dir: Optional[Path] = None) -> Set[str]:
    """Every composite the current code can emit (fresh-row detection).

    ``repro store stats`` counts a row as *fresh* when its stored
    fingerprint is one of these; anything else came from older code.
    """
    return {
        composite_fingerprint(_BASE_SUBSYSTEMS, package_dir),
        composite_fingerprint(_BASE_SUBSYSTEMS + ("proxy",), package_dir),
    }


def row_check(key: str, record: Mapping[str, Any]) -> str:
    """The integrity checksum of one serialized store row.

    A truncated sha256 over the key and the record's canonical JSON —
    enough to catch bit rot, truncation and row swaps, short enough to
    cost nothing per line.  Written by every backend at append time and
    verified by ``repro store fsck`` (:mod:`repro.store.fsck`).
    """
    payload = json.dumps({"key": key, "record": record}, sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_key(request: RunRequest, *, fingerprint: Optional[str] = None) -> str:
    """The content address of one run: sha256 of request + code.

    ``fingerprint`` defaults to the per-subsystem composite for this
    request (:func:`fingerprint_for`); tests (and cross-machine stores
    that pin a release) may pass their own.
    """
    payload = canonical_json({
        "schema": KEY_SCHEMA_VERSION,
        "code": (fingerprint if fingerprint is not None
                 else fingerprint_for(request)),
        "request": canonical(request),
    })
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# request / record JSON codec (persistence, not hashing)
# ----------------------------------------------------------------------
def _config_to_dict(config: Any) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    out = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        out[f.name] = _config_to_dict(value) if dataclasses.is_dataclass(
            value) else value
    return out


def _config_from_dict(cls: type, raw: Optional[Mapping[str, Any]]) -> Any:
    if raw is None:
        return None
    known = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(raw) - set(known))
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {', '.join(map(repr, unknown))}")
    kwargs = {}
    for name, value in raw.items():
        # A nested CC config dict (QuicConfig.cc / TcpConfig.cc); the
        # string-valued ManyflowConfig.cc kernel name passes through.
        if name == "cc" and isinstance(value, Mapping):
            value = _config_from_dict(CubicConfig, value)
        kwargs[name] = value
    return cls(**kwargs)


def request_to_dict(request: RunRequest) -> Dict[str, Any]:
    """A plain-JSON description of a request, rebuildable bit-identically."""
    return {
        "scenario": request.scenario.to_spec(),
        "page": {
            "name": request.page.name,
            "objects": [[o.obj_id, o.size_bytes] for o in request.page.objects],
        },
        "protocol": {
            "name": request.protocol.name,
            "config": _config_to_dict(request.protocol.config),
        },
        "device": _config_to_dict(request.device),
        "seed": request.seed,
        "trace": request.trace,
        "cwnd_interval": request.cwnd_interval,
        "proxied": request.proxied,
        "timeout": request.timeout,
        # None for ordinary page loads; a plain dict for manyflow runs.
        # Readers use .get, so rows written before the field existed
        # still decode.
        "manyflow": _config_to_dict(request.manyflow),
    }


def request_from_dict(raw: Mapping[str, Any]) -> RunRequest:
    scenario = Scenario.from_spec(dict(raw["scenario"]))
    page = WebPage(
        raw["page"]["name"],
        tuple(WebObject(obj_id, size)
              for obj_id, size in raw["page"]["objects"]),
    )
    proto_raw = raw["protocol"]
    config_cls = QuicConfig if proto_raw["name"] == "quic" else TcpConfig
    protocol = ProtocolSpec(
        proto_raw["name"], _config_from_dict(config_cls, proto_raw["config"]))
    device_raw = dict(raw["device"])
    device = DEVICE_PROFILES.get(device_raw.get("name", ""))
    if device is None or _config_to_dict(device) != device_raw:
        device = DeviceProfile(**device_raw)
    return RunRequest(
        scenario=scenario, page=page, protocol=protocol,
        seed=raw["seed"], device=device, trace=raw["trace"],
        cwnd_interval=raw["cwnd_interval"], proxied=raw["proxied"],
        timeout=raw["timeout"],
        manyflow=_config_from_dict(ManyflowConfig, raw.get("manyflow")),
    )


def record_to_dict(record: RunRecord) -> Dict[str, Any]:
    return {
        "request": request_to_dict(record.request),
        "plt": record.plt,
        "complete": record.complete,
        "metrics": dict(record.metrics),
        "wall_time": record.wall_time,
        "attempts": record.attempts,
        "failure": (None if record.failure is None else
                    {"kind": record.failure.kind,
                     "message": record.failure.message}),
    }


def record_from_dict(raw: Mapping[str, Any]) -> RunRecord:
    failure = raw.get("failure")
    return RunRecord(
        request=request_from_dict(raw["request"]),
        plt=raw["plt"],
        complete=raw["complete"],
        metrics=dict(raw["metrics"]),
        wall_time=raw["wall_time"],
        attempts=raw["attempts"],
        failure=None if failure is None else RunFailure(**failure),
    )

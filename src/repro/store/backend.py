"""The persistent results store: pluggable backends behind one protocol.

A store maps :func:`~repro.store.keys.run_key` content addresses to
completed :class:`~repro.core.executor.RunRecord` rows.  The interface
is :class:`StoreBackend`; two implementations ship:

* :class:`SqliteStore` — one sqlite file.  Atomic, compact, cheap point
  lookups; writes serialise on the sqlite lock, which is fine for a
  single coordinating process.
* :class:`~repro.store.shards.ShardStore` — a directory of append-only
  JSONL shard files bucketed by key prefix.  Many processes append
  concurrently without contending on one writer lock, which is what
  paper-scale sweeps on many-core hosts need.

:func:`open_store` selects a backend by path convention (``.sqlite`` /
``.db`` file vs directory; ``http(s)://`` URLs open the fabric's
:class:`~repro.fabric.client.RemoteStore`), honours ``$REPRO_STORE``
for the default location, and takes an explicit ``backend=`` override.
Everything above the backend — :class:`~repro.store.cache.RunCache`,
the executor's ``store=`` argument, the ``repro store`` CLI group —
works identically against all of them.

A store is deliberately dumb: it never computes keys, never decides
what is cacheable, and never invalidates.  Key semantics live in
:mod:`repro.store.keys`; the caching *policy* lives in
:mod:`repro.store.cache`.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..core.executor import RunRecord
from .keys import record_from_dict, record_to_dict, row_check

#: Environment variable naming the default store location.
STORE_ENV_VAR = "REPRO_STORE"
#: Default on-disk location when none is given (repo/cwd-local).
DEFAULT_STORE_PATH = ".repro-store.sqlite"
#: ``backend=`` values :func:`open_store` understands.
BACKENDS = ("sqlite", "shards", "http")

#: First bytes of every sqlite database file (format sniffing).
_SQLITE_MAGIC = b"SQLite format 3\x00"


def default_store_path() -> str:
    """Where ``--cache`` puts the store unless told otherwise."""
    return os.environ.get(STORE_ENV_VAR) or DEFAULT_STORE_PATH


def is_store_url(path: Union[str, Path]) -> bool:
    """Whether a store location names a fabric server rather than a file."""
    return str(path).startswith(("http://", "https://"))


class StoreBackend(abc.ABC):
    """The contract every results-store backend fulfils.

    Keys are opaque strings (in practice 64-hex run keys); values are
    :class:`RunRecord` rows tagged with a creation time and the code
    fingerprint that produced them.  ``export_jsonl``/``import_jsonl``
    are implemented once here on top of :meth:`items`/:meth:`put`, so
    every backend speaks the same portable JSONL dialect.
    """

    #: Human-readable backend name ("sqlite" / "shards").
    kind: str = ""
    #: String form of the on-disk location.
    path: str = ""

    # -- core map operations ----------------------------------------------
    @abc.abstractmethod
    def get(self, key: str) -> Optional[RunRecord]:
        """The stored record for ``key``, or None."""

    @abc.abstractmethod
    def put(self, key: str, record: RunRecord, *, fingerprint: str = "",
            created: Optional[float] = None) -> None:
        """Insert or replace one row."""

    def put_many(self, entries: List[Tuple[str, RunRecord, str]], *,
                 created: Optional[float] = None) -> int:
        """Insert or replace many ``(key, record, fingerprint)`` rows.

        The default loops :meth:`put`; backends override it with a
        batched implementation (one transaction, or one locked append
        per shard) — this is the write path pool workers use for
        worker-direct write-back, where per-row locking would dominate.
        """
        count = 0
        for key, record, fingerprint in entries:
            self.put(key, record, fingerprint=fingerprint, created=created)
            count += 1
        return count

    @abc.abstractmethod
    def __contains__(self, key: str) -> bool: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def keys(self) -> List[str]:
        """Every stored key, oldest row first."""

    @abc.abstractmethod
    def rows(self) -> Iterator[Tuple[str, float, str, str]]:
        """(key, created, fingerprint, label) for every row, oldest first."""

    @abc.abstractmethod
    def items(self) -> Iterator[Tuple[str, float, str, Dict[str, Any]]]:
        """(key, created, fingerprint, record-dict), oldest row first."""

    def row(self, key: str) -> Optional[Tuple[str, float, str,
                                              Dict[str, Any]]]:
        """One full row — ``(key, created, fingerprint, record-dict)``.

        Unlike :meth:`get` this keeps the sync-dialect envelope, which
        is what the fabric server's point lookups serve.  The default
        scans :meth:`items`; backends override it with an indexed read.
        """
        for candidate in self.items():
            if candidate[0] == key:
                return candidate
        return None

    @abc.abstractmethod
    def delete(self, key: str) -> bool: ...

    # -- maintenance -------------------------------------------------------
    @abc.abstractmethod
    def gc(self, older_than_seconds: float, now: Optional[float] = None,
           *, dry_run: bool = False) -> int:
        """Drop rows older than the horizon; returns how many went.

        ``dry_run`` only counts what *would* go, touching nothing.
        """

    @abc.abstractmethod
    def fingerprints(self) -> Dict[str, int]:
        """Row count per code fingerprint (stale generations show up here)."""

    # -- persistent counters ----------------------------------------------
    @abc.abstractmethod
    def bump_counter(self, name: str, delta: int = 1) -> None: ...

    @abc.abstractmethod
    def counters(self) -> Dict[str, int]: ...

    @abc.abstractmethod
    def close(self) -> None: ...

    # -- portability (shared) ----------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write every row as one JSON line; returns the row count."""
        count = 0
        with open(path, "w") as handle:
            for key, created, fingerprint, record in self.items():
                handle.write(json.dumps({
                    "key": key, "created": created,
                    "fingerprint": fingerprint, "record": record,
                }, sort_keys=True) + "\n")
                count += 1
        return count

    def import_jsonl(self, path: Union[str, Path]) -> int:
        """Merge a JSONL export into this store; returns rows imported."""
        count = 0
        for key, created, fingerprint, record in _iter_jsonl(path):
            self.put(key, record_from_dict(record),
                     fingerprint=fingerprint, created=created)
            count += 1
        return count

    # -- plumbing ----------------------------------------------------------
    @classmethod
    def open(cls, store: Union["StoreBackend", str, Path, None]
             ) -> "StoreBackend":
        """Coerce a store argument: an instance, a path, or None (default)."""
        return open_store(store)

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    key         TEXT PRIMARY KEY,
    created     REAL NOT NULL,
    fingerprint TEXT NOT NULL,
    label       TEXT NOT NULL,
    record      TEXT NOT NULL,
    checksum    TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class SqliteStore(StoreBackend):
    """A content-addressed map of run keys to run records in one sqlite file."""

    kind = "sqlite"

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = Path(self.path).resolve().parent
            parent.mkdir(parents=True, exist_ok=True)
        # A generous busy timeout: concurrent writers (benchmarks, a lab
        # of machines syncing into one file) queue instead of erroring.
        # check_same_thread=False lets the fabric server's handler
        # threads share this connection; the server serialises every
        # access under one lock, so the connection is never used
        # concurrently.
        self._db = sqlite3.connect(self.path, timeout=30.0,
                                   check_same_thread=False)
        self._db.executescript(_SCHEMA)
        try:  # stores created before the integrity column existed
            self._db.execute(
                "ALTER TABLE runs ADD COLUMN checksum TEXT NOT NULL "
                "DEFAULT ''")
        except sqlite3.OperationalError:
            pass
        self._db.commit()

    # -- core map operations ----------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        row = self._db.execute(
            "SELECT record FROM runs WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        return record_from_dict(json.loads(row[0]))

    def put(self, key: str, record: RunRecord, *, fingerprint: str = "",
            created: Optional[float] = None) -> None:
        record_dict = record_to_dict(record)
        self._db.execute(
            "INSERT OR REPLACE INTO runs (key, created, fingerprint, label, "
            "record, checksum) VALUES (?, ?, ?, ?, ?, ?)",
            (key, time.time() if created is None else created, fingerprint,
             record.request.label, json.dumps(record_dict),
             row_check(key, record_dict)),
        )
        self._db.commit()

    def put_many(self, entries: List[Tuple[str, RunRecord, str]], *,
                 created: Optional[float] = None) -> int:
        stamp = time.time() if created is None else created
        rows = []
        for key, record, fingerprint in entries:
            record_dict = record_to_dict(record)
            rows.append((key, stamp, fingerprint, record.request.label,
                         json.dumps(record_dict), row_check(key, record_dict)))
        self._db.executemany(
            "INSERT OR REPLACE INTO runs (key, created, fingerprint, label, "
            "record, checksum) VALUES (?, ?, ?, ?, ?, ?)", rows)
        self._db.commit()
        return len(rows)

    def __contains__(self, key: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM runs WHERE key = ?", (key,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def keys(self) -> List[str]:
        return [row[0] for row in self._db.execute(
            "SELECT key FROM runs ORDER BY created, key")]

    def rows(self) -> Iterator[Tuple[str, float, str, str]]:
        yield from self._db.execute(
            "SELECT key, created, fingerprint, label FROM runs "
            "ORDER BY created, key")

    def items(self) -> Iterator[Tuple[str, float, str, Dict[str, Any]]]:
        for key, created, fingerprint, record in self._db.execute(
                "SELECT key, created, fingerprint, record FROM runs "
                "ORDER BY created, key"):
            yield key, created, fingerprint, json.loads(record)

    def row(self, key: str) -> Optional[Tuple[str, float, str,
                                              Dict[str, Any]]]:
        raw = self._db.execute(
            "SELECT key, created, fingerprint, record FROM runs "
            "WHERE key = ?", (key,)).fetchone()
        if raw is None:
            return None
        return raw[0], raw[1], raw[2], json.loads(raw[3])

    def delete(self, key: str) -> bool:
        cursor = self._db.execute("DELETE FROM runs WHERE key = ?", (key,))
        self._db.commit()
        return cursor.rowcount > 0

    # -- maintenance -------------------------------------------------------
    def gc(self, older_than_seconds: float, now: Optional[float] = None,
           *, dry_run: bool = False) -> int:
        horizon = (time.time() if now is None else now) - older_than_seconds
        if dry_run:
            return self._db.execute(
                "SELECT COUNT(*) FROM runs WHERE created < ?",
                (horizon,)).fetchone()[0]
        cursor = self._db.execute(
            "DELETE FROM runs WHERE created < ?", (horizon,))
        self._db.commit()
        return cursor.rowcount

    def fingerprints(self) -> Dict[str, int]:
        return dict(self._db.execute(
            "SELECT fingerprint, COUNT(*) FROM runs GROUP BY fingerprint"))

    # -- persistent counters ----------------------------------------------
    def bump_counter(self, name: str, delta: int = 1) -> None:
        self._db.execute(
            "INSERT INTO meta (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = CAST(value AS INTEGER) + ?",
            (name, str(delta), delta))
        self._db.commit()

    def counters(self) -> Dict[str, int]:
        return {name: int(value) for name, value in self._db.execute(
            "SELECT name, value FROM meta")}

    def close(self) -> None:
        self._db.close()


#: Backwards-compatible name: `ResultStore` was the sqlite store before
#: the backend split.
ResultStore = SqliteStore


def open_store(store: Union[StoreBackend, str, Path, None] = None, *,
               backend: Optional[str] = None) -> StoreBackend:
    """Open a results store, selecting the backend by convention.

    ``store`` may be an existing backend (returned as-is), a path, an
    ``http(s)://`` URL naming a fabric server (``repro serve``), or
    None (``$REPRO_STORE`` / ``.repro-store.sqlite``).  ``backend``
    forces ``"sqlite"``, ``"shards"`` or ``"http"``; otherwise the path
    decides: URLs open a :class:`~repro.fabric.client.RemoteStore`,
    ``:memory:`` and existing files (or ``.sqlite``/``.db`` suffixes)
    open sqlite, existing directories (or any other new path) open the
    sharded JSONL store.
    """
    if isinstance(store, StoreBackend):
        if backend is not None and backend != store.kind:
            raise ValueError(
                f"store at {store.path} is {store.kind!r}, not {backend!r}")
        return store
    from .shards import ShardStore  # local: shards imports this module

    path = default_store_path() if store is None else str(store)
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r} (expected one of "
            f"{', '.join(BACKENDS)})")
    if is_store_url(path) or backend == "http":
        if not is_store_url(path):
            raise ValueError(
                f"backend 'http' needs an http(s):// URL, got {path!r}")
        if backend not in (None, "http"):
            raise ValueError(
                f"backend {backend!r} cannot open the fabric server at "
                f"{path}; drop the flag (URLs are always 'http')")
        from ..fabric.client import RemoteStore  # local: fabric imports this

        return RemoteStore(path)
    if backend is not None:
        return SqliteStore(path) if backend == "sqlite" else ShardStore(path)
    if path == ":memory:":
        return SqliteStore(path)
    target = Path(path)
    if target.is_dir():
        return ShardStore(target)
    if target.is_file():
        return SqliteStore(target)
    if target.suffix in (".sqlite", ".db"):
        return SqliteStore(target)
    return ShardStore(target)


# ----------------------------------------------------------------------
# the one resolution path
# ----------------------------------------------------------------------
class StoreNotFoundError(FileNotFoundError):
    """:func:`resolve_store` with ``must_exist`` found nothing at the path."""


def resolve_store_path(path: Union[str, Path, None] = None) -> str:
    """The store location an argument resolves to, without opening it.

    Precedence: an explicit non-empty ``path`` wins, then
    ``$REPRO_STORE``, then :data:`DEFAULT_STORE_PATH`.  ``None`` and
    ``""`` both mean "unset" (the CLI's bare ``--from-store``).
    """
    if path is None or str(path) == "":
        return default_store_path()
    return str(path)


def store_kind_at(path: Union[str, Path]) -> Optional[str]:
    """The backend kind of an existing store at ``path``, or None.

    Follows the same convention :func:`open_store` applies: a directory
    is a sharded store, a file is sqlite, a URL is a fabric server
    (reported without probing it).  ``:memory:`` and missing paths
    report None (nothing exists there yet).
    """
    if is_store_url(path):
        return "http"
    if str(path) == ":memory:":
        return None
    target = Path(path)
    if target.is_dir():
        return "shards"
    if target.is_file():
        return "sqlite"
    return None


def resolve_store(store: Union[StoreBackend, str, Path, None] = None, *,
                  backend: Optional[str] = None,
                  must_exist: bool = False) -> StoreBackend:
    """The single store-resolution path shared by the CLI and library.

    Every entry point that accepts a store — ``--cache`` / ``--store``
    flags, ``RunCache(...)``, the executor's ``store=`` argument —
    funnels through here, so path precedence (explicit argument >
    ``$REPRO_STORE`` > :data:`DEFAULT_STORE_PATH`) and backend
    selection behave identically everywhere.

    ``backend`` (the ``--backend`` flag; ``"auto"``/None infer from the
    path) forces an implementation — and conflicts *loudly* when the
    path already holds a store of the other kind, instead of failing
    deep inside the backend.  ``must_exist`` raises
    :class:`StoreNotFoundError` rather than creating an empty store —
    the read-only paths (reports, ``repro store ls``) want a friendly
    "nothing here yet", not a fresh empty directory.
    """
    forced = None if backend in (None, "auto") else backend
    if forced is not None and forced not in BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r} (expected one of "
            f"auto, {', '.join(BACKENDS)})")
    if isinstance(store, StoreBackend):
        return open_store(store, backend=forced)  # kind-mismatch check
    path = resolve_store_path(store)
    existing = store_kind_at(path)
    if must_exist and existing is None and path != ":memory:":
        raise StoreNotFoundError(f"no results store at {path}")
    if forced is not None and existing is not None and existing != forced:
        raise ValueError(
            f"--backend {forced} conflicts with the existing {existing} "
            f"store at {path}; drop the flag or point at another path")
    opened = open_store(path, backend=forced)
    if must_exist and existing == "http":
        opened.healthz()  # "exists" for a URL means the server answers
    return opened


# ----------------------------------------------------------------------
# cross-store sync
# ----------------------------------------------------------------------
def _iter_jsonl(path: Union[str, Path]
                ) -> Iterator[Tuple[str, Optional[float], str,
                                    Dict[str, Any]]]:
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            yield (raw["key"], raw.get("created"),
                   raw.get("fingerprint", ""), raw["record"])


def iter_source(source: Union[StoreBackend, str, Path]
                ) -> Iterator[Tuple[str, Optional[float], str,
                                    Dict[str, Any]]]:
    """Rows of any syncable source: a backend, a store path, a fabric
    server URL, or a JSONL export (sqlite files are sniffed by their
    magic bytes)."""
    if isinstance(source, StoreBackend):
        yield from source.items()
        return
    if is_store_url(source):
        yield from open_store(source).items()
        return
    path = Path(source)
    if path.is_dir():
        with open_store(path) as src:
            yield from src.items()
        return
    if not path.exists():
        raise FileNotFoundError(f"no store or export at {path}")
    with open(path, "rb") as handle:
        magic = handle.read(len(_SQLITE_MAGIC))
    if magic == _SQLITE_MAGIC:
        with SqliteStore(path) as src:
            yield from src.items()
        return
    yield from _iter_jsonl(path)


def merge_into(dst: StoreBackend, source: Union[StoreBackend, str, Path]
               ) -> Tuple[int, int]:
    """Merge ``source`` into ``dst``, skipping keys already present.

    Returns ``(imported, skipped)`` — the lab-wide warm-cache path:
    pull a peer's store (sqlite file, shard directory, fabric server
    URL, or JSONL export) and only the rows you were missing land.

    A remote destination gets the batched fast path: chunks of rows are
    probed with one ``/missing`` call each and uploaded in bulk, so a
    sync costs O(rows / batch) round trips instead of two per row.
    """
    probe = getattr(dst, "missing", None)
    upload = getattr(dst, "upload_rows", None)
    if probe is not None and upload is not None:
        imported = skipped = 0
        batch: List[Tuple[str, Optional[float], str, Dict[str, Any]]] = []

        def _flush() -> Tuple[int, int]:
            absent = set(probe(row[0] for row in batch))
            fresh = [row for row in batch if row[0] in absent]
            if fresh:
                upload(fresh)
            return len(fresh), len(batch) - len(fresh)

        for row in iter_source(source):
            batch.append(row)
            if len(batch) >= 500:
                done, skip = _flush()
                imported, skipped = imported + done, skipped + skip
                batch = []
        if batch:
            done, skip = _flush()
            imported, skipped = imported + done, skipped + skip
        return imported, skipped
    imported = skipped = 0
    for key, created, fingerprint, record in iter_source(source):
        if key in dst:
            skipped += 1
            continue
        dst.put(key, record_from_dict(record), fingerprint=fingerprint,
                created=created)
        imported += 1
    return imported, skipped

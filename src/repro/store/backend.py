"""The persistent results store: sqlite rows keyed by content address.

A :class:`ResultStore` maps :func:`~repro.store.keys.run_key` content
addresses to completed :class:`~repro.core.executor.RunRecord` rows.
sqlite gives atomic writes from a single process (the executor only
touches the store from the coordinating process, never from pool
workers) and cheap point lookups; a JSONL export/import pair makes a
store portable across machines and sqlite versions.

The store is deliberately dumb: it never computes keys, never decides
what is cacheable, and never invalidates.  Key semantics live in
:mod:`repro.store.keys`; the caching *policy* lives in
:mod:`repro.store.cache`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..core.executor import RunRecord
from .keys import record_from_dict, record_to_dict

#: Environment variable naming the default store location.
STORE_ENV_VAR = "REPRO_STORE"
#: Default on-disk location when none is given (repo/cwd-local).
DEFAULT_STORE_PATH = ".repro-store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    key         TEXT PRIMARY KEY,
    created     REAL NOT NULL,
    fingerprint TEXT NOT NULL,
    label       TEXT NOT NULL,
    record      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def default_store_path() -> str:
    """Where ``--cache`` puts the store unless told otherwise."""
    return os.environ.get(STORE_ENV_VAR) or DEFAULT_STORE_PATH


class ResultStore:
    """A content-addressed map of run keys to run records."""

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = Path(self.path).resolve().parent
            parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(self.path)
        self._db.executescript(_SCHEMA)
        self._db.commit()

    @classmethod
    def open(cls, store: Union["ResultStore", str, Path, None]
             ) -> "ResultStore":
        """Coerce a store argument: an instance, a path, or None (default)."""
        if isinstance(store, ResultStore):
            return store
        return cls(default_store_path() if store is None else store)

    # -- core map operations ----------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        row = self._db.execute(
            "SELECT record FROM runs WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        return record_from_dict(json.loads(row[0]))

    def put(self, key: str, record: RunRecord, *, fingerprint: str = "",
            created: Optional[float] = None) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO runs (key, created, fingerprint, label, "
            "record) VALUES (?, ?, ?, ?, ?)",
            (key, time.time() if created is None else created, fingerprint,
             record.request.label, json.dumps(record_to_dict(record))),
        )
        self._db.commit()

    def __contains__(self, key: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM runs WHERE key = ?", (key,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def keys(self) -> List[str]:
        return [row[0] for row in self._db.execute(
            "SELECT key FROM runs ORDER BY created, key")]

    def rows(self) -> Iterator[Tuple[str, float, str, str]]:
        """(key, created, fingerprint, label) for every row, oldest first."""
        yield from self._db.execute(
            "SELECT key, created, fingerprint, label FROM runs "
            "ORDER BY created, key")

    def delete(self, key: str) -> bool:
        cursor = self._db.execute("DELETE FROM runs WHERE key = ?", (key,))
        self._db.commit()
        return cursor.rowcount > 0

    # -- maintenance -------------------------------------------------------
    def gc(self, older_than_seconds: float,
           now: Optional[float] = None) -> int:
        """Drop rows older than the horizon; returns how many went."""
        horizon = (time.time() if now is None else now) - older_than_seconds
        cursor = self._db.execute(
            "DELETE FROM runs WHERE created < ?", (horizon,))
        self._db.commit()
        return cursor.rowcount

    def fingerprints(self) -> Dict[str, int]:
        """Row count per code fingerprint (stale generations show up here)."""
        return dict(self._db.execute(
            "SELECT fingerprint, COUNT(*) FROM runs GROUP BY fingerprint"))

    # -- persistent counters ----------------------------------------------
    def bump_counter(self, name: str, delta: int = 1) -> None:
        self._db.execute(
            "INSERT INTO meta (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = CAST(value AS INTEGER) + ?",
            (name, str(delta), delta))
        self._db.commit()

    def counters(self) -> Dict[str, int]:
        return {name: int(value) for name, value in self._db.execute(
            "SELECT name, value FROM meta")}

    # -- portability -------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write every row as one JSON line; returns the row count."""
        count = 0
        with open(path, "w") as handle:
            for key, created, fingerprint, _label in list(self.rows()):
                record = self._db.execute(
                    "SELECT record FROM runs WHERE key = ?", (key,)
                ).fetchone()[0]
                handle.write(json.dumps({
                    "key": key, "created": created,
                    "fingerprint": fingerprint,
                    "record": json.loads(record),
                }, sort_keys=True) + "\n")
                count += 1
        return count

    def import_jsonl(self, path: Union[str, Path]) -> int:
        """Merge a JSONL export into this store; returns rows imported."""
        count = 0
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                self.put(raw["key"], record_from_dict(raw["record"]),
                         fingerprint=raw.get("fingerprint", ""),
                         created=raw.get("created"))
                count += 1
        return count

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

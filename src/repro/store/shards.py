"""The sharded JSONL store: many writers, no single lock.

A :class:`ShardStore` is a directory of append-only JSONL files, one
per run-key prefix bucket (``0.jsonl`` … ``f.jsonl``, plus ``misc`` for
non-hex keys).  A write appends one line to one shard under a per-shard
lockfile, so N processes sweeping the same grid write concurrently and
only collide when two runs land in the same bucket at the same instant
— and even then they queue for microseconds, not for a database-wide
writer lock.  Structural changes (delete, gc compaction) rewrite the
shard to a temp file and ``os.replace`` it atomically.

Durability/concurrency contract:

* appends happen with the shard's lockfile held and are flushed before
  the lock drops, so concurrent writers interleave whole lines;
* the lock lives in a *separate* ``<shard>.lock`` file that is never
  renamed, so an appender can never race a compaction onto a dead inode;
* readers take no locks: a torn trailing line (a crash mid-append) is
  skipped — but *counted* per shard (:attr:`ShardStore.torn_lines`,
  surfaced by ``repro store stats`` and warned about once per shard),
  and duplicate keys resolve last-write-wins;
* every line carries an integrity checksum (:func:`~repro.store.keys.
  row_check`) verified by ``repro store fsck``, which quarantines
  corrupt rows to a ``quarantine.jsonl`` sidecar;
* counters are their own append-only ``counters.jsonl`` ledger of
  ``{"name": …, "delta": …}`` lines, summed on read and compacted
  opportunistically;
* data shards compact themselves: when a shard's append ledger carries
  more than ``compact_ratio`` dead lines (overwrites of existing keys —
  the steady state of a long-lived fabric server that keeps absorbing
  re-uploads), the next read rewrites it under the shard lock, so the
  directory's size tracks its *live* rows, not its write history.

On platforms without :mod:`fcntl` (Windows) locking degrades to plain
O_APPEND writes, which POSIX-atomically append whole small lines on
local filesystems — the single-process case stays correct everywhere.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

from ..core.executor import RunRecord
from .backend import StoreBackend
from .keys import record_from_dict, record_to_dict, row_check

#: Directory marker; refuses to treat arbitrary directories as stores.
MANIFEST_NAME = "store.json"
#: Hex characters a key prefix may bucket to; anything else -> "misc".
_HEX = set("0123456789abcdef")
#: Compact the counters ledger when it grows past this many lines.
_COUNTER_COMPACT_LINES = 4096
#: Default dead-line ratio beyond which a data shard auto-compacts.
DEFAULT_COMPACT_RATIO = 0.5
#: Shards with fewer ledger lines than this never auto-compact (the
#: rewrite would cost more than the dead lines do).
DEFAULT_COMPACT_MIN_LINES = 512

_Entry = Tuple[float, str, Dict[str, Any]]  # created, fingerprint, record


class ShardStore(StoreBackend):
    """A directory of key-prefix JSONL shards (see module docstring)."""

    kind = "shards"

    def __init__(self, path: Union[str, Path], *,
                 compact_ratio: Optional[float] = DEFAULT_COMPACT_RATIO,
                 compact_min_lines: int = DEFAULT_COMPACT_MIN_LINES) -> None:
        self.path = str(path)
        #: Auto-compact a shard whose ledger is more than this fraction
        #: dead lines (None disables auto-compaction entirely).
        self.compact_ratio = compact_ratio
        self.compact_min_lines = compact_min_lines
        #: Auto-compactions performed by *this* instance (session
        #: counter; the persistent "compactions" counter is lifetime).
        self.compactions = 0
        #: Torn (unparseable) lines observed per shard by this instance
        #: — the debris of crashed appends.  Readers skip them, but
        #: silence would hide real corruption, so they are counted here,
        #: warned about once per shard, and surfaced by ``repro store
        #: stats``; ``repro store fsck --repair`` removes them.
        self.torn_lines: Dict[str, int] = {}
        self._torn_warned: set = set()
        self._dir = Path(path)
        self._dir.mkdir(parents=True, exist_ok=True)
        manifest = self._dir / MANIFEST_NAME
        if manifest.exists():
            meta = json.loads(manifest.read_text())
            if meta.get("format") != "repro-shards":
                raise ValueError(
                    f"{self.path} exists but is not a repro shard store")
        else:
            tmp = manifest.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(
                {"format": "repro-shards", "version": 1}) + "\n")
            os.replace(tmp, manifest)
        #: Per-shard parse cache: name -> ((mtime_ns, size), entries).
        self._cache: Dict[str, Tuple[Tuple[int, int], Dict[str, _Entry]]] = {}

    # -- shard plumbing ----------------------------------------------------
    @staticmethod
    def shard_of(key: str) -> str:
        prefix = key[:1].lower()
        return prefix if prefix in _HEX else "misc"

    def _data_path(self, shard: str) -> Path:
        return self._dir / f"{shard}.jsonl"

    @contextlib.contextmanager
    def _locked(self, name: str) -> Iterator[None]:
        """Hold ``<name>.lock`` exclusively (no-op without fcntl)."""
        lock_path = self._dir / f"{name}.lock"
        with open(lock_path, "a") as handle:
            if fcntl is not None:
                fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle, fcntl.LOCK_UN)

    @staticmethod
    def _parse_counted(text: str) -> Tuple[Dict[str, _Entry], int, int]:
        """Parse a shard ledger; count valid and torn lines.

        ``lines - len(entries)`` is the shard's dead weight: overwrites
        of keys that appear again later (last-write-wins), exactly what
        auto-compaction reclaims.  ``torn`` counts lines that failed to
        parse at all — crashed appends or real corruption.
        """
        entries: Dict[str, _Entry] = {}
        lines = 0
        torn = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                entry = (raw["created"], raw.get("fingerprint", ""),
                         raw["record"])
                key = raw["key"]
            except (json.JSONDecodeError, KeyError, TypeError):
                torn += 1  # torn line from a crashed append, or bit rot
                continue
            lines += 1
            entries[key] = entry
        return entries, lines, torn

    def _parse_lines(self, text: str, shard: Optional[str] = None
                     ) -> Dict[str, _Entry]:
        entries, _lines, torn = self._parse_counted(text)
        if shard is not None:
            self._note_torn(shard, torn)
        return entries

    def _note_torn(self, shard: str, torn: int) -> None:
        """Record a parse's torn-line observation (latest parse wins)."""
        if torn == 0:
            self.torn_lines.pop(shard, None)
            return
        self.torn_lines[shard] = torn
        if shard not in self._torn_warned:
            self._torn_warned.add(shard)
            warnings.warn(
                f"shard store {self.path}: {torn} torn line(s) in shard "
                f"{shard!r} (skipped; run 'repro store fsck --repair' to "
                f"quarantine them)", RuntimeWarning, stacklevel=3)

    def _should_compact(self, lines: int, live: int) -> bool:
        if self.compact_ratio is None or lines < self.compact_min_lines:
            return False
        return (lines - live) / lines > self.compact_ratio

    def _load(self, shard: str) -> Dict[str, _Entry]:
        """Parse one shard, served from the mtime/size cache when clean."""
        path = self._data_path(shard)
        try:
            stat = path.stat()
        except FileNotFoundError:
            self._cache.pop(shard, None)
            return {}
        signature = (stat.st_mtime_ns, stat.st_size)
        cached = self._cache.get(shard)
        if cached is not None and cached[0] == signature:
            return cached[1]
        entries, lines, torn = self._parse_counted(path.read_text())
        self._note_torn(shard, torn)
        if self._should_compact(lines, len(entries)):
            return self._auto_compact(shard)
        self._cache[shard] = (signature, entries)
        return entries

    def _auto_compact(self, shard: str) -> Dict[str, _Entry]:
        """Rewrite a dead-heavy shard in place; returns its live entries."""
        with self._locked(shard):
            # Re-read under the lock: another process may have appended
            # (or already compacted) since the triggering read.
            path = self._data_path(shard)
            entries = self._parse_lines(
                path.read_text(), shard) if path.exists() else {}
            self._rewrite(shard, entries)
        self.torn_lines.pop(shard, None)  # the rewrite dropped the debris
        self.compactions += 1
        self.bump_counter("compactions")
        try:
            stat = self._data_path(shard).stat()
            self._cache[shard] = ((stat.st_mtime_ns, stat.st_size), entries)
        except FileNotFoundError:
            pass  # every entry was dead; _rewrite removed the file
        return entries

    def _shards(self) -> List[str]:
        return sorted(
            path.stem for path in self._dir.glob("*.jsonl")
            if path.stem not in ("counters", "quarantine"))

    def _rewrite(self, shard: str, entries: Dict[str, _Entry]) -> None:
        """Compaction: temp file + atomic rename (caller holds the lock)."""
        path = self._data_path(shard)
        self._cache.pop(shard, None)
        if not entries:
            with contextlib.suppress(FileNotFoundError):
                path.unlink()
            return
        tmp = path.with_suffix(".jsonl.tmp")
        with open(tmp, "w") as handle:
            for key in sorted(entries, key=lambda k: (entries[k][0], k)):
                created, fingerprint, record = entries[key]
                handle.write(_line(key, created, fingerprint, record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- core map operations ----------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        entry = self._load(self.shard_of(key)).get(key)
        if entry is None:
            return None
        return record_from_dict(entry[2])

    def put(self, key: str, record: RunRecord, *, fingerprint: str = "",
            created: Optional[float] = None) -> None:
        shard = self.shard_of(key)
        stamp = time.time() if created is None else created
        line = _line(key, stamp, fingerprint, record_to_dict(record))
        with self._locked(shard):
            _append_healed(self._data_path(shard), line)
        self._cache.pop(shard, None)

    def put_many(self, entries: List[Tuple[str, RunRecord, str]], *,
                 created: Optional[float] = None) -> int:
        """Batched append: group by shard, one lock + flush per shard.

        This is what makes worker-direct write-back cheap — a pool
        worker lands a whole chunk of records with at most one lock
        acquisition per touched shard instead of one per record.
        """
        stamp = time.time() if created is None else created
        by_shard: Dict[str, List[str]] = {}
        count = 0
        for key, record, fingerprint in entries:
            line = _line(key, stamp, fingerprint, record_to_dict(record))
            by_shard.setdefault(self.shard_of(key), []).append(line)
            count += 1
        for shard in sorted(by_shard):
            with self._locked(shard):
                _append_healed(self._data_path(shard),
                               "".join(by_shard[shard]))
            self._cache.pop(shard, None)
        return count

    def __contains__(self, key: str) -> bool:
        return key in self._load(self.shard_of(key))

    def __len__(self) -> int:
        return sum(len(self._load(shard)) for shard in self._shards())

    def _all_entries(self) -> List[Tuple[str, _Entry]]:
        merged: List[Tuple[str, _Entry]] = []
        for shard in self._shards():
            merged.extend(self._load(shard).items())
        merged.sort(key=lambda item: (item[1][0], item[0]))
        return merged

    def keys(self) -> List[str]:
        return [key for key, _entry in self._all_entries()]

    def rows(self) -> Iterator[Tuple[str, float, str, str]]:
        for key, (created, fingerprint, record) in self._all_entries():
            label = record.get("request", {}).get("page", {}).get("name", "")
            try:
                label = record_from_dict(record).request.label
            except Exception:  # noqa: BLE001 - keep listings best-effort
                pass
            yield key, created, fingerprint, label

    def items(self) -> Iterator[Tuple[str, float, str, Dict[str, Any]]]:
        for key, (created, fingerprint, record) in self._all_entries():
            yield key, created, fingerprint, record

    def row(self, key: str) -> Optional[Tuple[str, float, str,
                                              Dict[str, Any]]]:
        entry = self._load(self.shard_of(key)).get(key)
        if entry is None:
            return None
        return key, entry[0], entry[1], entry[2]

    def delete(self, key: str) -> bool:
        shard = self.shard_of(key)
        with self._locked(shard):
            path = self._data_path(shard)
            entries = self._parse_lines(
                path.read_text(), shard) if path.exists() else {}
            if key not in entries:
                return False
            del entries[key]
            self._rewrite(shard, entries)
        self.torn_lines.pop(shard, None)
        return True

    # -- maintenance -------------------------------------------------------
    def gc(self, older_than_seconds: float, now: Optional[float] = None,
           *, dry_run: bool = False) -> int:
        horizon = (time.time() if now is None else now) - older_than_seconds
        dropped = 0
        for shard in self._shards():
            with self._locked(shard):
                path = self._data_path(shard)
                entries = self._parse_lines(
                    path.read_text(), shard) if path.exists() else {}
                doomed = [key for key, entry in entries.items()
                          if entry[0] < horizon]
                dropped += len(doomed)
                if dry_run or not doomed:
                    continue
                for key in doomed:
                    del entries[key]
                self._rewrite(shard, entries)
        return dropped

    def fingerprints(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _key, (_created, fingerprint, _record) in self._all_entries():
            counts[fingerprint] = counts.get(fingerprint, 0) + 1
        return counts

    # -- persistent counters ----------------------------------------------
    def bump_counter(self, name: str, delta: int = 1) -> None:
        path = self._dir / "counters.jsonl"
        with self._locked("counters"):
            _append_healed(path, json.dumps({"name": name, "delta": delta},
                                            sort_keys=True) + "\n")

    def counters(self) -> Dict[str, int]:
        path = self._dir / "counters.jsonl"
        if not path.exists():
            return {}
        totals: Dict[str, int] = {}
        lines = 0
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue
            totals[raw["name"]] = totals.get(raw["name"], 0) + raw["delta"]
            lines += 1
        if lines > _COUNTER_COMPACT_LINES:
            self._compact_counters()
        return totals

    def _compact_counters(self) -> None:
        path = self._dir / "counters.jsonl"
        tmp = path.with_suffix(".jsonl.tmp")
        with self._locked("counters"):
            # Re-read under the lock: a bump may have landed since the
            # caller's unlocked read, and compaction must not lose it.
            totals: Dict[str, int] = {}
            for line in path.read_text().splitlines():
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    continue
                totals[raw["name"]] = (totals.get(raw["name"], 0)
                                       + raw["delta"])
            with open(tmp, "w") as handle:
                for name in sorted(totals):
                    handle.write(json.dumps(
                        {"name": name, "delta": totals[name]},
                        sort_keys=True) + "\n")
            os.replace(tmp, path)

    def stats(self) -> Dict[str, Any]:
        """Shard-level health: sizes, dead weight, torn-line counts.

        Parses every shard (so :attr:`torn_lines` reflects the whole
        directory), which is what ``repro store stats`` wants anyway.
        """
        live = 0
        lines = 0
        torn_total = 0
        for shard in self._shards():
            path = self._data_path(shard)
            try:
                text = path.read_text()
            except FileNotFoundError:
                continue
            entries, shard_lines, torn = self._parse_counted(text)
            self._note_torn(shard, torn)
            live += len(entries)
            lines += shard_lines
            torn_total += torn
        return {
            "shards": len(self._shards()),
            "live_rows": live,
            "ledger_lines": lines,
            "dead_lines": lines - live,
            "torn_lines": torn_total,
            "torn_by_shard": dict(self.torn_lines),
        }

    def close(self) -> None:
        self._cache.clear()


def _line(key: str, created: float, fingerprint: str,
          record: Dict[str, Any]) -> str:
    return json.dumps({"key": key, "created": created,
                       "fingerprint": fingerprint, "record": record,
                       "check": row_check(key, record)},
                      sort_keys=True) + "\n"


def _append_healed(path: Path, text: str) -> None:
    """Append ``text``, healing a torn tail first.

    A writer killed mid-append leaves a partial line with no trailing
    newline; appending straight after it would glue the new row onto
    the debris and destroy *both*.  Starting on a fresh line confines
    the damage to the torn fragment, which the parser skips and
    ``fsck --repair`` quarantines.  The caller holds the shard lock.
    """
    with open(path, "a+b") as handle:
        if handle.seek(0, os.SEEK_END) > 0:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
        handle.write(text.encode())
        handle.flush()

"""The caching policy: which records are reusable, and the hit/miss ledger.

:class:`RunCache` sits between the executor and a
:class:`~repro.store.backend.StoreBackend` (sqlite or sharded JSONL —
see :func:`~repro.store.backend.open_store`).  It decides what may be
served from the store (anything whose key matches — the key already
encodes configuration, seed *and* the code fingerprints of the
subsystems the run exercises, so a hit is definitionally fresh) and
what may be written back:

* successful records — always;
* ``"incomplete"`` failures — the simulated-time cap is deterministic,
  so re-running an incomplete cell reproduces the same failure; caching
  it makes resumed sweeps skip known-hopeless cells too;
* ``"timeout"`` / ``"error"`` failures — never.  Wall-clock budgets and
  transient exceptions depend on the host, not the request, so a rerun
  may well succeed.

Cache hits are returned with ``record.cached = True`` and counted in
:attr:`RunCache.hits`; both the per-session counters and the store's
persistent lifetime counters feed ``repro store stats``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

from ..core.executor import RunRecord, RunRequest
from .backend import StoreBackend, resolve_store
from .keys import fingerprint_for, run_key

#: What the executor's ``store=`` argument accepts.
StoreLike = Union["RunCache", StoreBackend, str, Path]


class RunCache:
    """A cache-policy wrapper around one :class:`StoreBackend`."""

    def __init__(self, store: Union[StoreBackend, str, Path, None] = None,
                 *, fingerprint: Optional[str] = None,
                 backend: Optional[str] = None) -> None:
        self.store = resolve_store(store, backend=backend)
        #: A pinned fingerprint overriding the per-request subsystem
        #: composite — for tests and cross-machine stores that pin a
        #: release.  None (the default) derives it per request.
        self.fingerprint = fingerprint
        #: Session counters (this process, this cache instance).
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Retried attempts observed this session (one per ``retry``
        #: event the executor emitted), so event streams and counters
        #: reconcile exactly.
        self.retries = 0

    @classmethod
    def of(cls, store: Optional[StoreLike]) -> Optional["RunCache"]:
        """Coerce the executor's ``store=`` argument; None stays None."""
        if store is None or isinstance(store, RunCache):
            return store
        return cls(store)

    # ------------------------------------------------------------------
    def fingerprint_of(self, request: RunRequest) -> str:
        """The code fingerprint entering this request's key."""
        if self.fingerprint is not None:
            return self.fingerprint
        return fingerprint_for(request)

    def key_for(self, request: RunRequest) -> str:
        return run_key(request, fingerprint=self.fingerprint_of(request))

    def lookup_with_key(self, request: RunRequest
                        ) -> Tuple[str, str, Optional[RunRecord]]:
        """``(key, fingerprint, hit-or-None)`` for one store probe.

        The streaming executor uses this form: a miss keeps its
        precomputed key and fingerprint so the pool worker that runs it
        can write the record back without recomputing either.
        """
        fingerprint = self.fingerprint_of(request)
        key = run_key(request, fingerprint=fingerprint)
        record = self.store.get(key)
        if record is None:
            self.misses += 1
            self.store.bump_counter("misses")
            return key, fingerprint, None
        self.hits += 1
        self.store.bump_counter("hits")
        record.cached = True
        return key, fingerprint, record

    def lookup(self, request: RunRequest) -> Optional[RunRecord]:
        """A fresh hit for ``request``, or None (counted either way)."""
        return self.lookup_with_key(request)[2]

    @staticmethod
    def cacheable(record: RunRecord) -> bool:
        if record.cached:
            return False  # already in the store; don't churn timestamps
        return record.failure is None or record.failure.kind == "incomplete"

    def offer(self, record: RunRecord) -> bool:
        """Write a freshly computed record back, if the policy allows."""
        if not self.cacheable(record):
            return False
        self.store.put(self.key_for(record.request), record,
                       fingerprint=self.fingerprint_of(record.request))
        self.writes += 1
        self.store.bump_counter("writes")
        return True

    def offer_many(self, records) -> int:
        """Batch :meth:`offer`: one backend write for a whole chunk."""
        batch = [(self.key_for(record.request), record,
                  self.fingerprint_of(record.request))
                 for record in records if self.cacheable(record)]
        if not batch:
            return 0
        self.store.put_many(batch)
        self.writes += len(batch)
        self.store.bump_counter("writes", len(batch))
        return len(batch)

    # ------------------------------------------------------------------
    @property
    def session_stats(self) -> Tuple[int, int, int]:
        """(hits, misses, writes) for this cache instance."""
        return self.hits, self.misses, self.writes

    def describe_session(self) -> str:
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (f"cache: {self.hits}/{total} hits ({rate:.0f}%), "
                f"{self.writes} new results stored in {self.store.path}")

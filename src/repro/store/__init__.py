"""Content-addressed results store and run cache.

Every run in this framework is a pure function of its
:class:`~repro.core.executor.RunRequest` plus the source code it
exercises, so results are perfectly cacheable.  This package provides
the three layers:

* :mod:`repro.store.keys` — canonical serialisation, per-subsystem code
  fingerprints, and the :func:`run_key` content address;
* :mod:`repro.store.backend` — the :class:`StoreBackend` protocol, the
  sqlite :class:`SqliteStore`, the :func:`open_store` factory and
  :func:`merge_into` cross-store sync;
* :mod:`repro.store.shards` — the sharded JSONL :class:`ShardStore`
  (concurrent multi-process writers, no single writer lock);
* :mod:`repro.store.cache` — the :class:`RunCache` policy layer the
  executor talks to (what is reusable, what is written back, hit/miss
  accounting);
* :mod:`repro.store.fsck` — integrity checking: per-row checksums
  (:func:`row_check`) verified by :func:`fsck`, with ``--repair``
  quarantining corrupt rows to a sidecar (``repro store fsck``).

Typical use::

    from repro.store import open_store
    from repro.core import run_experiment

    store = open_store("results.sqlite")        # or a shard directory
    run_experiment(spec, jobs=8, store=store)   # cold: executes, fills
    run_experiment(spec, jobs=8, store=store)   # warm: 100% cache hits

Because completed runs are written back *as they finish*, a killed
sweep resumes for free: the rerun only executes the missing cells.  A
warm store is also directly reportable: ``repro report --from-store``
collates the cached records without re-running anything.
"""

from .backend import (
    BACKENDS,
    DEFAULT_STORE_PATH,
    STORE_ENV_VAR,
    ResultStore,
    SqliteStore,
    StoreBackend,
    StoreNotFoundError,
    default_store_path,
    is_store_url,
    merge_into,
    open_store,
    resolve_store,
    resolve_store_path,
    store_kind_at,
)
from .cache import RunCache, StoreLike
from .fsck import FsckIssue, FsckReport, fsck
from .keys import (
    KEY_SCHEMA_VERSION,
    SUBSYSTEMS,
    achievable_fingerprints,
    canonical,
    canonical_json,
    code_fingerprint,
    composite_fingerprint,
    fingerprint_for,
    record_from_dict,
    record_to_dict,
    request_from_dict,
    request_subsystems,
    request_to_dict,
    row_check,
    run_key,
    subsystem_fingerprints,
)
from .shards import ShardStore

__all__ = [
    "BACKENDS",
    "DEFAULT_STORE_PATH",
    "STORE_ENV_VAR",
    "ResultStore",
    "SqliteStore",
    "ShardStore",
    "StoreBackend",
    "StoreNotFoundError",
    "default_store_path",
    "is_store_url",
    "merge_into",
    "open_store",
    "resolve_store",
    "resolve_store_path",
    "store_kind_at",
    "RunCache",
    "StoreLike",
    "FsckIssue",
    "FsckReport",
    "fsck",
    "row_check",
    "KEY_SCHEMA_VERSION",
    "SUBSYSTEMS",
    "achievable_fingerprints",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "composite_fingerprint",
    "fingerprint_for",
    "record_from_dict",
    "record_to_dict",
    "request_from_dict",
    "request_subsystems",
    "request_to_dict",
    "run_key",
    "subsystem_fingerprints",
]

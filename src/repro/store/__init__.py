"""Content-addressed results store and run cache.

Every run in this framework is a pure function of its
:class:`~repro.core.executor.RunRequest` plus the simulator's source
code, so results are perfectly cacheable.  This package provides the
three layers:

* :mod:`repro.store.keys` — canonical serialisation, the source-tree
  fingerprint, and the :func:`run_key` content address;
* :mod:`repro.store.backend` — the sqlite-backed :class:`ResultStore`
  with JSONL export/import and garbage collection;
* :mod:`repro.store.cache` — the :class:`RunCache` policy layer the
  executor talks to (what is reusable, what is written back, hit/miss
  accounting).

Typical use::

    from repro.store import ResultStore
    from repro.core import run_experiment

    store = ResultStore("results.sqlite")
    run_experiment(spec, jobs=8, store=store)   # cold: executes, fills
    run_experiment(spec, jobs=8, store=store)   # warm: 100% cache hits

Because completed runs are written back *as they finish*, a killed
sweep resumes for free: the rerun only executes the missing cells.
"""

from .backend import (
    DEFAULT_STORE_PATH,
    STORE_ENV_VAR,
    ResultStore,
    default_store_path,
)
from .cache import RunCache, StoreLike
from .keys import (
    KEY_SCHEMA_VERSION,
    canonical,
    canonical_json,
    code_fingerprint,
    record_from_dict,
    record_to_dict,
    request_from_dict,
    request_to_dict,
    run_key,
)

__all__ = [
    "DEFAULT_STORE_PATH",
    "STORE_ENV_VAR",
    "ResultStore",
    "default_store_path",
    "RunCache",
    "StoreLike",
    "KEY_SCHEMA_VERSION",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "record_from_dict",
    "record_to_dict",
    "request_from_dict",
    "request_to_dict",
    "run_key",
]

"""Store integrity checking: ``repro store fsck [--repair]``.

Every store row carries an integrity checksum
(:func:`~repro.store.keys.row_check`, schema v3) written at append
time.  :func:`fsck` walks a *local* store (sqlite or shards) and
verifies three invariants per row:

1. **checksum** — the stored check matches a recomputation over the
   serialized ``(key, record)`` pair.  A mismatch means the bytes on
   disk are not the bytes that were written: bit rot, a torn rewrite, a
   buggy editor.  These rows are *corrupt* and are quarantined by
   ``--repair``.
2. **key derivation** — re-building the request from the stored record
   and hashing it (:func:`~repro.store.keys.run_key` with the row's own
   fingerprint) reproduces the row's key.  A mismatch is *advisory*
   ("key_mismatch"): the row is internally consistent (its checksum
   passed) but was filed under a foreign key — synthetic test rows and
   hand-imported data look like this, so repair keeps them.
3. **ledger hygiene** (shards only) — torn lines in data shards and the
   counters ledger are counted; ``--repair`` drops the debris (data
   lines go to the quarantine sidecar, counter totals are re-written).

``--repair`` moves corrupt rows to a quarantine sidecar —
``quarantine.jsonl`` inside a shard directory, ``<file>.quarantine.jsonl``
beside a sqlite store — one JSON line per quarantined row with the raw
bytes and the reason, so nothing is destroyed, only set aside.  The
persistent ``quarantined`` counter is bumped by the number of rows
moved, reconciling the counter ledger with what actually happened.

The chaos gate (``scripts/chaos_sweep.py``) runs :func:`fsck` after a
fault-injected sweep and asserts :attr:`FsckReport.clean` — zero
residual corruption is part of the fabric's correctness contract.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .backend import SqliteStore, StoreBackend
from .keys import record_from_dict, request_from_dict, row_check, run_key
from .shards import ShardStore

#: Sidecar name inside a shard directory (excluded from data shards).
QUARANTINE_NAME = "quarantine.jsonl"


@dataclasses.dataclass
class FsckIssue:
    """One problem row: where it lives, what failed, and why."""

    key: str           #: the row's claimed key ("" for torn lines)
    location: str      #: shard name, or "runs" for sqlite rows
    kind: str          #: "torn" | "checksum" | "key_mismatch" | "undecodable"
    detail: str = ""


@dataclasses.dataclass
class FsckReport:
    """What an :func:`fsck` pass found (and, with repair, did)."""

    backend: str
    path: str
    rows: int = 0              #: live rows scanned
    verified: int = 0          #: rows passing checksum + key derivation
    unchecked: int = 0         #: legacy rows with no checksum (key-checked only)
    torn_lines: int = 0        #: unparseable data-shard lines
    counter_torn: int = 0      #: unparseable counter-ledger lines
    checksum_failures: List[FsckIssue] = dataclasses.field(
        default_factory=list)
    key_mismatches: List[FsckIssue] = dataclasses.field(default_factory=list)
    repaired: bool = False
    quarantined: int = 0       #: rows moved to the sidecar by repair
    quarantine_path: Optional[str] = None

    @property
    def corruptions(self) -> int:
        """Rows that are damaged (quarantinable): torn + checksum-bad."""
        return self.torn_lines + len(self.checksum_failures)

    @property
    def issues(self) -> int:
        """Everything worth a non-zero exit: corruption + advisories."""
        return (self.corruptions + len(self.key_mismatches)
                + self.counter_torn)

    @property
    def clean(self) -> bool:
        return self.issues == 0

    def summary(self) -> str:
        """One human line, ``fsck``-style."""
        head = (f"{self.backend} store at {self.path}: {self.rows} rows, "
                f"{self.verified} verified")
        if self.unchecked:
            head += f", {self.unchecked} legacy (no checksum)"
        if self.clean and not self.quarantined:
            return head + " — clean"
        parts = []
        if self.torn_lines:
            parts.append(f"{self.torn_lines} torn line(s)")
        if self.checksum_failures:
            parts.append(f"{len(self.checksum_failures)} checksum failure(s)")
        if self.key_mismatches:
            parts.append(f"{len(self.key_mismatches)} key mismatch(es)")
        if self.counter_torn:
            parts.append(f"{self.counter_torn} torn counter line(s)")
        if self.quarantined:
            parts.append(f"{self.quarantined} row(s) quarantined to "
                         f"{self.quarantine_path}")
        return head + " — " + ", ".join(parts) if parts else head

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["corruptions"] = self.corruptions
        out["issues"] = self.issues
        out["clean"] = self.clean
        return out


def _check_row(key: str, fingerprint: str, record: Dict[str, Any],
               stored_check: Optional[str], location: str,
               report: FsckReport) -> bool:
    """Verify one decoded row; returns False when it must be quarantined."""
    if stored_check:
        if stored_check != row_check(key, record):
            report.checksum_failures.append(FsckIssue(
                key=key, location=location, kind="checksum",
                detail="stored checksum does not match row bytes"))
            return False
    else:
        report.unchecked += 1
    try:
        derived = run_key(request_from_dict(record["request"]),
                          fingerprint=fingerprint)
        record_from_dict(record)  # the full record must decode too
    except Exception as exc:  # noqa: BLE001 - classify, don't crash fsck
        report.key_mismatches.append(FsckIssue(
            key=key, location=location, kind="undecodable",
            detail=f"{type(exc).__name__}: {exc}"))
        return True  # checksum passed: bytes are as written, keep the row
    if derived != key:
        report.key_mismatches.append(FsckIssue(
            key=key, location=location, kind="key_mismatch",
            detail="re-derived run key differs (foreign or synthetic key)"))
        return True  # advisory: internally consistent, keep it
    if stored_check:
        report.verified += 1
    return True


# ----------------------------------------------------------------------
# shards
# ----------------------------------------------------------------------
def _scan_shard_text(text: str, shard: str, report: FsckReport
                     ) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Split one shard ledger into (kept lines, (bad line, reason))."""
    good: List[str] = []
    bad: List[Tuple[str, str]] = []
    live: Dict[str, None] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            raw = json.loads(stripped)
            key = raw["key"]
            record = raw["record"]
            fingerprint = raw.get("fingerprint", "")
            if not isinstance(record, dict):
                raise TypeError("record is not an object")
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            report.torn_lines += 1
            bad.append((stripped, f"torn: {type(exc).__name__}"))
            continue
        if _check_row(key, fingerprint, record, raw.get("check"), shard,
                      report):
            good.append(stripped)
            live[key] = None
        else:
            bad.append((stripped, "checksum"))
    report.rows += len(live)
    return good, bad


def _quarantine(path: Path, shard: str, bad: List[Tuple[str, str]]) -> None:
    with open(path, "a") as handle:
        for line, reason in bad:
            handle.write(json.dumps(
                {"shard": shard, "reason": reason, "line": line},
                sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _fsck_shards(store: ShardStore, *, repair: bool) -> FsckReport:
    report = FsckReport(backend="shards", path=store.path)
    sidecar = Path(store.path) / QUARANTINE_NAME
    for shard in store._shards():
        path = store._data_path(shard)
        with store._locked(shard):
            try:
                text = path.read_text()
            except FileNotFoundError:
                continue
            good, bad = _scan_shard_text(text, shard, report)
            if repair and bad:
                _quarantine(sidecar, shard, bad)
                report.quarantined += len(bad)
                tmp = path.with_suffix(".jsonl.tmp")
                with open(tmp, "w") as handle:
                    for line in good:
                        handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                if good:
                    os.replace(tmp, path)
                else:
                    tmp.unlink()
                    path.unlink()
        if repair and bad:
            store._cache.pop(shard, None)
            store.torn_lines.pop(shard, None)
    # counters ledger hygiene
    counters_path = Path(store.path) / "counters.jsonl"
    if counters_path.exists():
        with store._locked("counters"):
            totals: Dict[str, int] = {}
            for line in counters_path.read_text().splitlines():
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    raw = json.loads(stripped)
                    totals[raw["name"]] = (totals.get(raw["name"], 0)
                                           + raw["delta"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    report.counter_torn += 1
            if repair and report.counter_torn:
                tmp = counters_path.with_suffix(".jsonl.tmp")
                with open(tmp, "w") as handle:
                    for name in sorted(totals):
                        handle.write(json.dumps(
                            {"name": name, "delta": totals[name]},
                            sort_keys=True) + "\n")
                os.replace(tmp, counters_path)
                report.counter_torn = 0  # reconciled
    if repair:
        report.repaired = True
        if report.quarantined:
            report.quarantine_path = str(sidecar)
            store.bump_counter("quarantined", report.quarantined)
            # repair removed the corruption it found
            report.torn_lines = 0
            report.checksum_failures = []
    return report


# ----------------------------------------------------------------------
# sqlite
# ----------------------------------------------------------------------
def _fsck_sqlite(store: SqliteStore, *, repair: bool) -> FsckReport:
    report = FsckReport(backend="sqlite", path=store.path)
    bad_rows: List[Tuple[str, str, str]] = []  # key, raw record, reason
    for key, created, fingerprint, record_json, checksum in store._db.execute(
            "SELECT key, created, fingerprint, record, checksum FROM runs "
            "ORDER BY created, key"):
        report.rows += 1
        try:
            record = json.loads(record_json)
            if not isinstance(record, dict):
                raise TypeError("record is not an object")
        except (json.JSONDecodeError, TypeError):
            report.checksum_failures.append(FsckIssue(
                key=key, location="runs", kind="checksum",
                detail="record column is not valid JSON"))
            bad_rows.append((key, record_json, "undecodable"))
            continue
        if not _check_row(key, fingerprint, record, checksum or None,
                          "runs", report):
            bad_rows.append((key, record_json, "checksum"))
    if repair:
        report.repaired = True
        if bad_rows:
            sidecar = Path(str(store.path) + ".quarantine.jsonl")
            with open(sidecar, "a") as handle:
                for key, record_json, reason in bad_rows:
                    handle.write(json.dumps(
                        {"key": key, "reason": reason, "record": record_json},
                        sort_keys=True) + "\n")
            store._db.executemany("DELETE FROM runs WHERE key = ?",
                                  [(key,) for key, _r, _why in bad_rows])
            store._db.commit()
            store.bump_counter("quarantined", len(bad_rows))
            report.quarantined = len(bad_rows)
            report.quarantine_path = str(sidecar)
            report.checksum_failures = []
    return report


def fsck(store: StoreBackend, *, repair: bool = False) -> FsckReport:
    """Verify (and with ``repair`` fix) a local store's integrity.

    Remote stores cannot be fsck'd over the wire — run fsck on the
    machine that owns the files (point it at the served path).
    """
    if isinstance(store, ShardStore):
        return _fsck_shards(store, repair=repair)
    if isinstance(store, SqliteStore):
        return _fsck_sqlite(store, repair=repair)
    raise ValueError(
        f"fsck needs a local store (sqlite or shards), not {store.kind!r}; "
        f"run it on the host that owns the files")

"""The remote store client: a served store as a ``StoreBackend``.

:class:`RemoteStore` implements the full
:class:`~repro.store.backend.StoreBackend` contract over the fabric
wire protocol (see :mod:`repro.fabric.server`), so everything above the
backend — ``RunCache``, the executor's ``store=`` argument,
``merge_into``, ``repro store``/``repro report --from-store`` — works
unchanged against ``http://host:port``.  :func:`~repro.store.backend.
open_store` recognises URLs, so the usual entry points need no new
spelling::

    store = open_store("http://lab-server:8737")
    run_experiment(spec, jobs=4, store=store)

Beyond the contract, two batched calls exist for the fabric's sake:

* :meth:`RemoteStore.missing` — one ``POST /missing`` round-trip maps a
  whole sweep's key list to the subset the server lacks;
* :meth:`RemoteStore.upload_rows` / :meth:`RemoteStore.fetch` — bulk
  JSONL transfer in the store-sync dialect, preserving per-row
  ``created`` stamps (a plain ``put_many`` restamps).

Failure handling is deliberately loud and actionable:

* an unreachable server raises :class:`FabricConnectionError` naming
  the URL and how to start a server there;
* a server speaking a different ``KEY_SCHEMA_VERSION`` raises
  :class:`SchemaMismatchError` *before* any data moves — content
  addresses from different schema generations must never mix.

Transient transport errors on idempotent calls are retried with
exponential backoff (uploads are content-addressed, so a replay is
harmless) and deterministic-seeded jitter (N workers recovering from
the same server blip must not thunder-herd on the same schedule);
counter bumps are not idempotent and are never retried.  Server-side
5xx replies and truncated/garbled bodies count as transient too — a
faulting server is indistinguishable from a flaky network.

Graceful degradation: constructed with ``spill_path=``, the client
runs a circuit breaker over its *write* path.  After
``breaker_threshold`` consecutive failed write calls the circuit
opens: writes land in a local write-ahead
:class:`~repro.store.shards.ShardStore` at ``spill_path`` instead of
erroring, the sweep keeps moving, and after ``breaker_cooldown``
seconds the next write probes the server again (half-open).  The first
successful write resyncs everything spilled — content addressing makes
the replay harmless — so the served store converges to exactly what a
fault-free run would have produced.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.executor import RunRecord
from ..store.backend import StoreBackend
from ..store.keys import (
    KEY_SCHEMA_VERSION,
    record_from_dict,
    record_to_dict,
)

#: Rows per bulk request (uploads and fetches are chunked to this).
BATCH_SIZE = 500


class FabricError(RuntimeError):
    """Base class for fabric transport failures."""


class FabricConnectionError(FabricError):
    """The fabric server could not be reached (or dropped mid-call)."""


class SchemaMismatchError(FabricError):
    """Client and server disagree on ``KEY_SCHEMA_VERSION``."""


_Row = Tuple[str, Optional[float], str, Dict[str, Any]]


def _parse_rows(text: str) -> List[_Row]:
    rows: List[_Row] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        rows.append((raw["key"], raw.get("created"),
                     raw.get("fingerprint", ""), raw["record"]))
    return rows


def _chunked(items: List[Any], size: int) -> Iterator[List[Any]]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


class RemoteStore(StoreBackend):
    """A results store served by ``repro serve`` on another process/host."""

    kind = "http"

    def __init__(self, url: str, *, timeout: float = 30.0, retries: int = 2,
                 backoff: float = 0.25, check_schema: bool = True,
                 spill_path: Optional[str] = None, breaker_threshold: int = 3,
                 breaker_cooldown: float = 2.0) -> None:
        if not url.startswith(("http://", "https://")):
            raise ValueError(
                f"RemoteStore needs an http(s):// URL, got {url!r}")
        self.path = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._check_schema = check_schema
        self._schema_checked = False
        # Deterministic-seeded jitter: stable within one process (runs
        # replay), decorrelated across workers (no thundering herd).
        self._jitter = random.Random(f"repro-fabric:{os.getpid()}:{self.path}")
        # -- circuit breaker (write path; enabled by spill_path) -----------
        self.spill_path = None if spill_path is None else str(spill_path)
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._spill: Optional[StoreBackend] = None
        self._write_failures = 0
        self._open_until = 0.0
        #: Times the circuit opened / rows spilled locally / rows
        #: resynced to the server after recovery (session counters).
        self.circuit_opens = 0
        self.spilled_rows = 0
        self.resynced_rows = 0

    # -- transport ---------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[bytes] = None,
                 *, retry: bool = True) -> bytes:
        """One HTTP round-trip; transport failures become fabric errors."""
        attempts = (self.retries + 1) if retry else 1
        last: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                # Exponential backoff with seeded jitter (0.5x-1.5x):
                # workers retrying after one server blip spread out
                # instead of re-colliding in lockstep.
                time.sleep(self.backoff * (2 ** (attempt - 1))
                           * (0.5 + self._jitter.random()))
            request = urllib.request.Request(
                self.path + path, data=body, method=method,
                headers={"Content-Type": "application/json"} if body else {})
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as reply:
                    return reply.read()
            except urllib.error.HTTPError as exc:
                if exc.code >= 500 and retry:
                    last = exc  # server-side fault: transient on
                    continue    # idempotent calls, same as a lost packet
                # The server answered: not a transport failure.  4xx
                # surface to the caller, which maps 404s to None/False.
                raise
            except http.client.HTTPException as exc:
                # Truncated or garbled reply (IncompleteRead,
                # BadStatusLine, RemoteDisconnected): transient.
                last = exc
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last = exc
        if isinstance(last, urllib.error.HTTPError):
            raise FabricConnectionError(
                f"the fabric store server at {self.path} keeps failing "
                f"(HTTP {last.code} after {attempts} attempt(s)); check its "
                f"logs, or re-serve the store with 'repro serve'")
        reason = getattr(last, "reason", last)
        raise FabricConnectionError(
            f"cannot reach the fabric store server at {self.path} "
            f"({reason}); start one with "
            f"'repro serve --store PATH --port {_port_of(self.path)}' "
            f"on that host, or check the URL")

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None, *,
              retry: bool = True) -> Dict[str, Any]:
        body = (json.dumps(payload).encode()
                if payload is not None else None)
        return json.loads(self._request(method, path, body,
                                        retry=retry).decode())

    def _ensure_schema(self) -> None:
        """One-time handshake: refuse to mix key-schema generations."""
        if self._schema_checked or not self._check_schema:
            return
        info = self.healthz()
        theirs = info.get("key_schema_version")
        if theirs != KEY_SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"the fabric server at {self.path} speaks key schema "
                f"v{theirs} but this client speaks v{KEY_SCHEMA_VERSION}; "
                f"run keys from different schema generations never match, "
                f"so syncing would only exchange dead rows — upgrade the "
                f"older side (or re-serve the store with matching code)")
        self._schema_checked = True

    # -- circuit breaker (write path) --------------------------------------
    def _breaker_enabled(self) -> bool:
        return self.spill_path is not None and self.breaker_threshold > 0

    def _circuit_open(self) -> bool:
        return time.monotonic() < self._open_until

    def _spill_store(self) -> StoreBackend:
        if self._spill is None:
            from ..store.shards import ShardStore  # local: import cycle

            self._spill = ShardStore(self.spill_path)
        return self._spill

    def _spill_writes(self, rows: List[_Row]) -> None:
        store = self._spill_store()
        for key, created, fingerprint, record in rows:
            store.put(key, record_from_dict(record), fingerprint=fingerprint,
                      created=created)
        self.spilled_rows += len(rows)

    def _note_write_failure(self) -> None:
        self._write_failures += 1
        if self._write_failures >= self.breaker_threshold:
            if not self._circuit_open():
                self.circuit_opens += 1
            self._open_until = time.monotonic() + self.breaker_cooldown

    def _note_write_success(self) -> None:
        self._write_failures = 0
        self._open_until = 0.0
        try:
            self.resync()
        except FabricConnectionError:
            # The server vanished again between the probe and the
            # resync; the spill is intact, the next success retries it.
            self._note_write_failure()

    def resync(self) -> int:
        """Upload everything spilled while the circuit was open.

        Called automatically by the first successful write after a
        recovery (the half-open probe), and callable explicitly as an
        end-of-run flush.  Returns rows resynced.  Content addressing
        makes the replay idempotent — re-uploading a row the server
        already absorbed is a no-op on its state.
        """
        if self.spill_path is None or not os.path.isdir(self.spill_path):
            return 0
        store = self._spill_store()
        rows = list(store.items())
        if not rows:
            return 0
        self._upload_now(rows)
        # Drop everything from the spill (created < now + 1s horizon).
        store.gc(older_than_seconds=-1.0)
        self.resynced_rows += len(rows)
        return len(rows)

    # -- fabric extras -----------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """The server's liveness/handshake document (no schema gate)."""
        return self._json("GET", "/healthz")

    def missing(self, keys: Iterable[str]) -> List[str]:
        """The subset of ``keys`` the *server* lacks, in one batched call.

        This is the coordinator's one-round-trip miss-list probe: post
        the sweep's whole key list, get back exactly what still needs
        executing.  Chunked at :data:`BATCH_SIZE` keys per request.
        """
        self._ensure_schema()
        out: List[str] = []
        for chunk in _chunked(list(keys), BATCH_SIZE):
            out.extend(self._json("POST", "/missing",
                                  {"keys": chunk})["missing"])
        return out

    def fetch(self, keys: Iterable[str]) -> List[_Row]:
        """Bulk download: full rows for the present subset of ``keys``."""
        self._ensure_schema()
        rows: List[_Row] = []
        for chunk in _chunked(list(keys), BATCH_SIZE):
            body = json.dumps({"keys": chunk}).encode()
            rows.extend(_parse_rows(
                self._request("POST", "/fetch", body).decode()))
        return rows

    def upload_rows(self, rows: Iterable[_Row]) -> int:
        """Bulk upload rows in the sync dialect, preserving ``created``.

        Content-addressed rows make replays harmless, so transport
        retries (with backoff) are safe here — this is the write path
        fabric workers sync through.  With the circuit breaker enabled
        (``spill_path=``) a down server degrades to local spilling
        instead of an exception; see the class docstring.
        """
        rows = list(rows)
        if self._breaker_enabled():
            if self._circuit_open():
                self._spill_writes(rows)
                return len(rows)
            try:
                uploaded = self._upload_now(rows)
            except FabricConnectionError:
                self._note_write_failure()
                self._spill_writes(rows)
                return len(rows)
            self._note_write_success()
            return uploaded
        return self._upload_now(rows)

    def _upload_now(self, rows: List[_Row]) -> int:
        """The raw bulk-upload path (no breaker)."""
        self._ensure_schema()
        uploaded = 0
        for chunk in _chunked(rows, BATCH_SIZE):
            body = "".join(
                json.dumps({"key": key, "created": created,
                            "fingerprint": fingerprint, "record": record},
                           sort_keys=True) + "\n"
                for key, created, fingerprint, record in chunk).encode()
            reply = json.loads(self._request("POST", "/records",
                                             body).decode())
            uploaded += int(reply.get("imported", len(chunk)))
        return uploaded

    # -- core map operations ----------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        self._ensure_schema()
        try:
            raw = json.loads(self._request("GET", f"/records/{key}").decode())
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise
        return record_from_dict(raw["record"])

    def put(self, key: str, record: RunRecord, *, fingerprint: str = "",
            created: Optional[float] = None) -> None:
        if self._breaker_enabled():
            # Route through the breaker-guarded bulk path so single-row
            # writes degrade (spill + resync) exactly like batches.
            self.upload_rows(
                [(key, created, fingerprint, record_to_dict(record))])
            return
        self._ensure_schema()
        body = json.dumps({
            "created": created, "fingerprint": fingerprint,
            "record": record_to_dict(record),
        }).encode()
        self._request("PUT", f"/records/{key}", body)

    def put_many(self, entries: List[Tuple[str, RunRecord, str]], *,
                 created: Optional[float] = None) -> int:
        return self.upload_rows(
            [(key, created, fingerprint, record_to_dict(record))
             for key, record, fingerprint in entries])

    def __contains__(self, key: str) -> bool:
        self._ensure_schema()
        return not self._json("POST", "/missing", {"keys": [key]})["missing"]

    def __len__(self) -> int:
        self._ensure_schema()
        return int(self._json("GET", "/stats")["runs"])

    def keys(self) -> List[str]:
        self._ensure_schema()
        return list(self._json("GET", "/keys")["keys"])

    def rows(self) -> Iterator[Tuple[str, float, str, str]]:
        for key, created, fingerprint, record in self.items():
            try:
                label = record_from_dict(record).request.label
            except Exception:  # noqa: BLE001 - keep listings best-effort
                label = ""
            yield key, created, fingerprint, label

    def items(self) -> Iterator[Tuple[str, float, str, Dict[str, Any]]]:
        self._ensure_schema()
        yield from _parse_rows(self._request("GET", "/records").decode())

    def delete(self, key: str) -> bool:
        self._ensure_schema()
        try:
            reply = json.loads(
                self._request("DELETE", f"/records/{key}").decode())
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return False
            raise
        return bool(reply.get("deleted"))

    # -- maintenance -------------------------------------------------------
    def gc(self, older_than_seconds: float, now: Optional[float] = None,
           *, dry_run: bool = False) -> int:
        self._ensure_schema()
        return int(self._json("POST", "/gc", {
            "older_than_seconds": older_than_seconds,
            "now": now, "dry_run": dry_run})["dropped"])

    def fingerprints(self) -> Dict[str, int]:
        self._ensure_schema()
        return dict(self._json("GET", "/stats")["fingerprints"])

    # -- persistent counters ----------------------------------------------
    def bump_counter(self, name: str, delta: int = 1) -> None:
        self._ensure_schema()
        # Not idempotent: a replayed bump double-counts, so no retry.
        self._json("POST", "/counters", {"name": name, "delta": delta},
                   retry=False)

    def counters(self) -> Dict[str, int]:
        self._ensure_schema()
        return {name: int(value) for name, value in
                self._json("GET", "/counters")["counters"].items()}

    def close(self) -> None:
        pass  # connections are per-request; nothing is held open


def _port_of(url: str) -> str:
    from urllib.parse import urlsplit

    return str(urlsplit(url).port or 80)

"""The work-sharing coordinator: one sweep, N processes, one store.

:func:`iter_fabric_runs` turns a sweep's ``RunRequest`` list into a
distributed, resumable job queue over a fabric store server:

1. every request is content-addressed (:func:`~repro.store.keys.run_key`
   over the canonical request plus the per-subsystem code fingerprint);
2. **one** batched ``POST /missing`` call maps the whole key list to the
   miss-list — everything else is served as ``hit`` events from one bulk
   ``POST /fetch``;
3. the misses are sharded round-robin across N worker processes, each
   executing through the ordinary :func:`~repro.core.executor.iter_runs`
   into a *private local shard store* and bulk-uploading completed rows
   to the server every ``sync_every`` results (with the client's
   retry/backoff underneath; a down server just defers the batch to the
   next sync);
4. the workers' typed :class:`~repro.core.executor.RunEvent` streams are
   merged, re-indexed to sweep order, and yielded to the caller —
   exactly one terminal event per request, same contract as
   ``iter_runs``.

Crash safety falls out of content addressing.  A worker's local shard
store is its write-ahead log: a killed worker is respawned over the
*same* local directory with its unfinished assignment, so anything it
executed-but-had-not-uploaded replays as instant local hits and still
reaches the server; anything it never ran simply runs.  Killing the
whole coordinator loses nothing either — a rerun's ``/missing`` probe
shrinks to the absent cells.  Nothing is ever lost, re-measured, or
double-counted.

``repro worker`` is the CLI front-end::

    repro worker --file grid.json --url http://lab-server:8737 --workers 8
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import shutil
import tempfile
import time
import traceback
from dataclasses import replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.executor import (
    RunEvent,
    RunFn,
    RunRequest,
    _terminal_event,
    iter_runs,
)
from ..store.keys import fingerprint_for, record_from_dict, run_key
from .client import FabricConnectionError, RemoteStore

#: Completed results a worker accumulates before bulk-uploading.
DEFAULT_SYNC_EVERY = 32
#: Attempts a worker makes to flush its final batch before giving up
#: (each attempt already carries the client's own transport retries).
_FLUSH_ATTEMPTS = 4


class FabricWorkerError(RuntimeError):
    """A fabric worker failed unrecoverably (or too many were lost)."""


#: One sharded unit of work: ``(sweep index, request)``.
_Assigned = Tuple[int, RunRequest]


def _hit_event(index: int, request: RunRequest, key: str,
               record_dict: Dict[str, Any]) -> RunEvent:
    record = record_from_dict(record_dict)
    record.cached = True
    return _terminal_event("hit", index, request, key, record, stored=True)


def _sync_new_rows(local: Any, remote: RemoteStore,
                   uploaded: set) -> int:
    """Upload every local row the server hasn't been sent yet."""
    rows = [row for row in local.items() if row[0] not in uploaded]
    if not rows:
        return 0
    count = remote.upload_rows(rows)
    uploaded.update(row[0] for row in rows)
    return count


def _worker_main(worker_id: int, assignment: Sequence[_Assigned], url: str,
                 local_path: str, sync_every: int, retries: int,
                 wall_timeout: Optional[float], run_fn: Optional[RunFn],
                 events: Any) -> None:
    """One fabric worker process: execute a shard, sync, report events.

    The local shard store doubles as the write-ahead log — rows land
    there first (via the executor's ordinary store write-back) and are
    bulk-uploaded in batches.  A sync that cannot reach the server is
    simply deferred; only the *final* flush escalates to a failure,
    because exiting with unsent rows would stall the sweep until a
    respawn replays them.
    """
    local = None
    try:
        remote = RemoteStore(url)
        uploaded: set = set()
        from ..store.backend import open_store

        local = open_store(local_path, backend="shards")
        requests = [request for _, request in assignment]
        indices = [index for index, _ in assignment]
        since_sync = 0
        for event in iter_runs(requests, jobs=1, wall_timeout=wall_timeout,
                               retries=retries, run_fn=run_fn, store=local):
            events.put(("event", worker_id,
                        replace(event, index=indices[event.index])))
            if event.terminal:
                since_sync += 1
                if since_sync >= sync_every:
                    since_sync = 0
                    try:
                        _sync_new_rows(local, remote, uploaded)
                    except FabricConnectionError:
                        pass  # deferred: rows stay local, next sync retries
        for attempt in range(_FLUSH_ATTEMPTS):
            try:
                _sync_new_rows(local, remote, uploaded)
                break
            except FabricConnectionError:
                if attempt == _FLUSH_ATTEMPTS - 1:
                    raise
                time.sleep(0.5 * (2 ** attempt))
        events.put(("done", worker_id, len(assignment)))
    except BaseException:  # noqa: BLE001 - report, then die
        events.put(("failed", worker_id, traceback.format_exc()))
    finally:
        if local is not None:
            local.close()


def iter_fabric_runs(
    requests: Sequence[RunRequest],
    url: str,
    *,
    workers: int = 2,
    sync_every: int = DEFAULT_SYNC_EVERY,
    retries: int = 1,
    wall_timeout: Optional[float] = None,
    run_fn: Optional[RunFn] = None,
    workdir: Optional[str] = None,
    max_restarts: Optional[int] = None,
    on_worker_start: Optional[Callable[[int, int], None]] = None,
    progress_timeout: Optional[float] = None,
    fault_plan: Optional[Any] = None,
) -> Iterator[RunEvent]:
    """Execute a sweep against a fabric server, streaming merged events.

    The distributed analogue of :func:`~repro.core.executor.iter_runs`:
    same typed event stream, same exactly-one-terminal-per-request
    contract, but the misses execute in ``workers`` separate processes
    and the results land in the server's store.

    Parameters
    ----------
    url:
        The fabric server (``repro serve``).  Reachability and
        ``KEY_SCHEMA_VERSION`` agreement are checked up front — a
        mismatched or absent server fails loudly before any work starts.
    workers:
        Worker processes to shard the miss-list across (round-robin).
    sync_every:
        Completed results a worker batches before bulk-uploading.
        Smaller = less loss-window after a crash (a respawn replays
        unsynced rows from the worker's local store anyway); larger =
        fewer round trips.
    run_fn:
        Per-request run function (default: the real simulator).  Must
        be importable in a child process.
    workdir:
        Directory for the workers' local shard stores
        (``workdir/worker-<i>``).  Defaults to a temporary directory
        cleaned up on success.  Pass an explicit one to keep the local
        write-ahead stores around (or to resume into them).
    max_restarts:
        Respawn budget for killed workers (default ``2 * workers``);
        exceeding it raises :class:`FabricWorkerError`.
    on_worker_start:
        ``callback(worker_id, pid)`` after every (re)spawn — the hook
        the kill/resume tests use to aim their signals.
    progress_timeout:
        Hung-worker watchdog: a live worker that has produced no event
        for this many seconds is SIGKILLed and respawned (within the
        same ``max_restarts`` budget) — a stuck run function or a
        deadlocked child no longer stalls the whole sweep.  None (the
        default) disables the watchdog; per-*run* timeouts are
        ``wall_timeout``'s job, this deadline is per *worker process*.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` supplying the
        ``worker`` fault surface: every event from worker *N* counts
        one ``take("worker", str(N))`` operation, and a scheduled
        ``kill`` SIGKILLs that worker mid-sweep (the respawn/replay
        machinery then has to earn its keep — chaos testing).
    """
    requests = list(requests)
    if not requests:
        return
    if workers < 1:
        raise ValueError("workers must be >= 1")
    remote = RemoteStore(url)
    remote.healthz()  # fail fast if unreachable
    tagged: List[Tuple[int, RunRequest, str]] = []
    for index, request in enumerate(requests):
        fingerprint = fingerprint_for(request)
        tagged.append((index, request,
                       run_key(request, fingerprint=fingerprint)))
    missing = set(remote.missing([key for _, _, key in tagged]))
    hits = [(index, request, key) for index, request, key in tagged
            if key not in missing]
    misses = [(index, request, key) for index, request, key in tagged
              if key in missing]
    if hits:
        rows = {key: record for key, _, _, record
                in remote.fetch([key for _, _, key in hits])}
        for index, request, key in hits:
            yield _hit_event(index, request, key, rows[key])
    if not misses:
        return

    own_workdir = workdir is None
    base = Path(tempfile.mkdtemp(prefix="repro-fabric-")
                if own_workdir else workdir)
    base.mkdir(parents=True, exist_ok=True)
    workers = min(workers, len(misses))
    assignments: List[List[_Assigned]] = [[] for _ in range(workers)]
    for position, (index, request, _key) in enumerate(misses):
        assignments[position % workers].append((index, request))
    key_of = {index: key for index, _, key in misses}

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else None)
    events: Any = ctx.Queue()
    if max_restarts is None:
        max_restarts = 2 * workers

    def _spawn(worker_id: int) -> Any:
        remaining = [(index, request)
                     for index, request in assignments[worker_id]
                     if index not in terminal_seen]
        process = ctx.Process(
            target=_worker_main,
            args=(worker_id, remaining, url,
                  str(base / f"worker-{worker_id}"), sync_every, retries,
                  wall_timeout, run_fn, events),
            name=f"repro-fabric-worker-{worker_id}", daemon=True)
        process.start()
        last_progress[worker_id] = time.monotonic()
        if on_worker_start is not None:
            on_worker_start(worker_id, process.pid)
        return process

    terminal_seen: set = set()
    finished: set = set()
    last_progress: Dict[int, float] = {}
    restarts = 0
    alive = {worker_id: _spawn(worker_id) for worker_id in range(workers)}
    try:
        while alive:
            try:
                message = events.get(timeout=0.1)
            except queue_mod.Empty:
                message = None
            if message is not None:
                kind, worker_id = message[0], message[1]
                last_progress[worker_id] = time.monotonic()
                if kind == "event":
                    event = message[2]
                    if fault_plan is not None:
                        fault = fault_plan.take("worker", str(worker_id))
                        if fault is not None and fault.spec.kind == "kill":
                            victim = alive.get(worker_id)
                            if victim is not None and victim.is_alive():
                                victim.kill()  # scheduled chaos: SIGKILL
                    if event.terminal:
                        if event.index in terminal_seen:
                            continue  # a respawn replayed it as a local hit
                        terminal_seen.add(event.index)
                    yield event
                elif kind == "done":
                    finished.add(worker_id)
                elif kind == "failed":
                    raise FabricWorkerError(
                        f"fabric worker {worker_id} failed:\n{message[2]}")
                continue  # drain queued events before liveness checks
            for worker_id, process in list(alive.items()):
                if process.is_alive():
                    hung = (progress_timeout is not None
                            and worker_id not in finished
                            and (time.monotonic()
                                 - last_progress.get(worker_id, 0.0)
                                 > progress_timeout))
                    if not hung:
                        continue
                    # Hung-worker watchdog: alive but mute past the
                    # deadline — kill it and fall through to the
                    # ordinary respawn path below.
                    process.kill()
                    process.join(timeout=5.0)
                else:
                    process.join()
                del alive[worker_id]
                if worker_id in finished:
                    continue
                # Killed without a word: its local shard store is the
                # write-ahead log, so a respawn over the same directory
                # replays executed-but-unsent rows as instant hits and
                # only the genuinely unrun cells execute.
                restarts += 1
                if restarts > max_restarts:
                    raise FabricWorkerError(
                        f"fabric worker {worker_id} died and the restart "
                        f"budget ({max_restarts}) is spent")
                alive[worker_id] = _spawn(worker_id)
    finally:
        for process in alive.values():
            process.terminate()
        for process in alive.values():
            process.join(timeout=5.0)
        events.close()

    leftover = [(index, request) for worker_assignment in assignments
                for index, request in worker_assignment
                if index not in terminal_seen]
    if leftover:
        # A worker exited cleanly but its last queued events were lost
        # (possible if it was killed mid-queue-flush).  The rows may
        # still have been uploaded — serve those as hits; anything truly
        # absent is a real loss.
        rows = {key: record for key, _, _, record in remote.fetch(
            [key_of[index] for index, _ in leftover])}
        for index, request in leftover:
            key = key_of[index]
            if key in rows:
                yield _hit_event(index, request, key, rows[key])
            else:
                raise FabricWorkerError(
                    f"no terminal event and no stored record for request "
                    f"{index} ({request.label}); the sweep is incomplete")
    if own_workdir:
        shutil.rmtree(base, ignore_errors=True)


def run_fabric_sweep(
    requests: Sequence[RunRequest],
    url: str,
    **kwargs: Any,
) -> Dict[str, int]:
    """Run a sweep to completion against a fabric server; count outcomes.

    Convenience wrapper over :func:`iter_fabric_runs` for callers that
    only want the summary: ``{"requests", "hits", "completed",
    "failed", "retries"}``.
    """
    counts = {"requests": 0, "hits": 0, "completed": 0, "failed": 0,
              "retries": 0}
    for event in iter_fabric_runs(requests, url, **kwargs):
        if event.kind == "retry":
            counts["retries"] += 1
        if not event.terminal:
            continue
        counts["requests"] += 1
        if event.kind == "hit":
            counts["hits"] += 1
        elif event.kind == "complete" and event.ok:
            counts["completed"] += 1
        elif event.kind == "complete":
            counts["completed"] += 1
            counts["failed"] += 1
        else:
            counts["failed"] += 1
    return counts

"""The HTTP store server: any local store, served to the fabric.

:class:`StoreServer` wraps a :class:`~repro.store.backend.StoreBackend`
in a stdlib :class:`~http.server.ThreadingHTTPServer` — zero third-party
dependencies — speaking the content-addressed key protocol:

==========================  ============================================
``GET  /healthz``           liveness + ``key_schema_version`` handshake
``GET  /stats``             row count, lifetime counters, fingerprints
``GET  /keys``              every stored key
``GET  /counters``          the persistent counter map
``GET  /records``           every row, streamed as JSONL (bulk download)
``GET  /records/<key>``     one row, or 404
``PUT  /records/<key>``     insert/replace one row
``POST /records``           bulk upload: JSONL body -> ``put_many``
``POST /missing``           ``{"keys": [...]}`` -> the subset the server
                            *lacks* (the one-round-trip miss-list probe)
``POST /fetch``             ``{"keys": [...]}`` -> the present subset's
                            rows as JSONL (bulk download by key)
``POST /gc``                drop rows older than a horizon
``POST /counters``          bump one persistent counter
``DELETE /records/<key>``   drop one row
==========================  ============================================

Rows travel in the store's portable JSONL dialect — ``{"key":,
"created":, "fingerprint":, "record":}`` — exactly what
``export_jsonl``/``import_jsonl`` read and write, so the wire format is
the sync format.  Every handler runs under one server-wide lock: the
handler threads serialise on the backing store (which is what a sqlite
backing needs, and what keeps a shard compaction from interleaving a
bulk download), while the sharded backend's own per-shard flocks keep
*other processes* appending to the same directory safe as ever.

``repro serve`` is the CLI front-end::

    repro serve --store sweeps/ --port 8737
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..store.backend import StoreBackend, open_store
from ..store.keys import KEY_SCHEMA_VERSION

#: Version of the fabric wire protocol itself (paths + payload shapes).
PROTOCOL_VERSION = 1
#: Default TCP port (`"QC"` on a phone keypad was taken; this is free).
DEFAULT_PORT = 8737

_JSON = "application/json"
_JSONL = "application/x-ndjson"


def _row_line(key: str, created: float, fingerprint: str,
              record: Dict[str, Any]) -> bytes:
    return (json.dumps({"key": key, "created": created,
                        "fingerprint": fingerprint, "record": record},
                       sort_keys=True) + "\n").encode()


def _parse_rows(body: bytes) -> List[Tuple[str, Optional[float], str,
                                           Dict[str, Any]]]:
    """Decode a JSONL (or JSON-array) body of rows in the sync dialect."""
    text = body.decode()
    stripped = text.lstrip()
    if stripped.startswith("["):
        raws = json.loads(text)
    else:
        raws = [json.loads(line) for line in text.splitlines()
                if line.strip()]
    return [(raw["key"], raw.get("created"), raw.get("fingerprint", ""),
             raw["record"]) for raw in raws]


class StoreRequestHandler(BaseHTTPRequestHandler):
    """One fabric request; the backing store hangs off ``self.server``."""

    server_version = f"repro-fabric/{PROTOCOL_VERSION}"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _reply(self, status: int, payload: bytes,
               content_type: str = _JSON) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if getattr(self, "_truncate_reply", False):
            # Injected fault: promise the full body, deliver half, hang
            # up — the client sees http.client.IncompleteRead.
            self._truncate_reply = False
            self.close_connection = True
            self.wfile.write(payload[:len(payload) // 2])
            return
        self.wfile.write(payload)

    def _json(self, status: int, payload: Dict[str, Any]) -> None:
        self._reply(status, (json.dumps(payload, sort_keys=True)
                             + "\n").encode())

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    @property
    def store(self) -> StoreBackend:
        return self.server.store  # type: ignore[attr-defined]

    @property
    def lock(self) -> threading.Lock:
        return self.server.store_lock  # type: ignore[attr-defined]

    def _route(self) -> Tuple[str, Optional[str]]:
        """``(collection, key-or-None)`` for the request path."""
        path = urlsplit(self.path).path.rstrip("/")
        parts = [part for part in path.split("/") if part]
        if len(parts) == 1:
            return parts[0], None
        if len(parts) == 2:
            return parts[0], parts[1]
        return path or "/", None

    def _fault_gate(self) -> bool:
        """Consult the server's fault plan before handling a request.

        Returns True when the fault consumed the request (a scheduled
        5xx or a dropped connection); ``stall`` sleeps *before* the
        server-wide lock so only this request stalls, and ``truncate``
        arms :meth:`_reply` to cut the body short.  ``/healthz`` is
        exempt — the liveness/handshake path stays dependable so chaos
        runs can still tell "faulting" from "gone".
        """
        plan = getattr(self.server, "fault_plan", None)
        if plan is None:
            return False
        endpoint = "/" + self._route()[0]
        if endpoint == "/healthz":
            return False
        event = plan.take("http", endpoint)
        if event is None:
            return False
        kind = event.spec.kind
        if kind == "stall":
            time.sleep(event.spec.param or 0.25)
            return False
        if kind == "error_500":
            with contextlib.suppress(OSError):
                self._error(500, "injected fault: scheduled 5xx")
            return True
        if kind == "drop":
            # Vanish mid-request: no status line, no body.
            self.close_connection = True
            with contextlib.suppress(OSError):
                self.connection.shutdown(socket.SHUT_RDWR)
            return True
        if kind == "truncate":
            self._truncate_reply = True
        return False

    # -- verbs -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        if self._fault_gate():
            return
        collection, key = self._route()
        try:
            with self.lock:
                if collection == "healthz" and key is None:
                    self._json(200, {
                        "ok": True,
                        "protocol_version": PROTOCOL_VERSION,
                        "key_schema_version": KEY_SCHEMA_VERSION,
                        "kind": self.store.kind,
                        "runs": len(self.store),
                    })
                elif collection == "stats" and key is None:
                    self._json(200, {
                        "kind": self.store.kind,
                        "path": self.store.path,
                        "runs": len(self.store),
                        "counters": self.store.counters(),
                        "fingerprints": self.store.fingerprints(),
                        "key_schema_version": KEY_SCHEMA_VERSION,
                    })
                elif collection == "keys" and key is None:
                    self._json(200, {"keys": self.store.keys()})
                elif collection == "counters" and key is None:
                    self._json(200, {"counters": self.store.counters()})
                elif collection == "records" and key is None:
                    lines = [_row_line(*row) for row in self.store.items()]
                    self._reply(200, b"".join(lines), _JSONL)
                elif collection == "records":
                    # row() keeps the created/fingerprint envelope the
                    # sync dialect carries; get() alone would lose it.
                    row = self.store.row(key)
                    if row is None:
                        self._error(404, f"no record for key {key!r}")
                    else:
                        self._reply(200, _row_line(*row), _JSON)
                else:
                    self._error(404, f"unknown path {self.path!r}")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except OSError as exc:
            # A failing backing store (disk trouble, injected faults)
            # is the server's problem, reported as such — the client
            # retries idempotent calls on 5xx.
            with contextlib.suppress(OSError):
                self._error(500, f"store failure: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        if self._fault_gate():
            return
        collection, key = self._route()
        body = self._body()
        try:
            if collection == "missing" and key is None:
                keys = json.loads(body.decode())["keys"]
                with self.lock:
                    missing = [k for k in keys if k not in self.store]
                self._json(200, {"missing": missing})
            elif collection == "fetch" and key is None:
                wanted = set(json.loads(body.decode())["keys"])
                with self.lock:
                    lines = [_row_line(*row) for row in self.store.items()
                             if row[0] in wanted]
                self._reply(200, b"".join(lines), _JSONL)
            elif collection == "records" and key is None:
                rows = _parse_rows(body)
                from ..store.keys import record_from_dict

                with self.lock:
                    for row_key, created, fingerprint, record in rows:
                        self.store.put(row_key, record_from_dict(record),
                                       fingerprint=fingerprint,
                                       created=created)
                self._json(200, {"imported": len(rows)})
            elif collection == "gc" and key is None:
                spec = json.loads(body.decode())
                with self.lock:
                    dropped = self.store.gc(
                        float(spec["older_than_seconds"]),
                        now=spec.get("now"),
                        dry_run=bool(spec.get("dry_run", False)))
                self._json(200, {"dropped": dropped})
            elif collection == "counters" and key is None:
                spec = json.loads(body.decode())
                with self.lock:
                    self.store.bump_counter(spec["name"],
                                            int(spec.get("delta", 1)))
                self._json(200, {"ok": True})
            else:
                self._error(404, f"unknown path {self.path!r}")
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"malformed request body: {exc}")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except OSError as exc:
            with contextlib.suppress(OSError):
                self._error(500, f"store failure: {exc}")

    def do_PUT(self) -> None:  # noqa: N802 - http.server contract
        if self._fault_gate():
            return
        collection, key = self._route()
        if collection != "records" or key is None:
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            raw = json.loads(self._body().decode())
            from ..store.keys import record_from_dict

            record = record_from_dict(raw["record"])
            with self.lock:
                self.store.put(key, record,
                               fingerprint=raw.get("fingerprint", ""),
                               created=raw.get("created"))
            self._json(200, {"ok": True})
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"malformed record body: {exc}")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except OSError as exc:
            with contextlib.suppress(OSError):
                self._error(500, f"store failure: {exc}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server contract
        if self._fault_gate():
            return
        collection, key = self._route()
        if collection != "records" or key is None:
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            with self.lock:
                deleted = self.store.delete(key)
            self._json(200 if deleted else 404, {"deleted": deleted})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except OSError as exc:
            with contextlib.suppress(OSError):
                self._error(500, f"store failure: {exc}")


class StoreServer:
    """A fabric server bound to one backing store.

    Blocking use (``repro serve``)::

        StoreServer("sweeps/", port=8737).serve_forever()

    Background use (tests, in-process fabrics)::

        with StoreServer(store, port=0) as server:
            RemoteStore(server.url).put(...)

    ``port=0`` binds an ephemeral port; read it back from :attr:`url`.
    """

    def __init__(self, store: Any, *, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, verbose: bool = False,
                 fault_plan: Optional[Any] = None) -> None:
        self.store = open_store(store)
        #: Optional :class:`repro.faults.FaultPlan` driving the HTTP
        #: fault hook (chaos testing); None serves faithfully.
        self.fault_plan = fault_plan
        self._httpd = ThreadingHTTPServer((host, port), StoreRequestHandler)
        self._httpd.store = self.store  # type: ignore[attr-defined]
        self._httpd.store_lock = threading.Lock()  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.fault_plan = fault_plan  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self._httpd.server_close()

    def start(self) -> str:
        """Serve on a daemon thread; returns the server URL."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-fabric-server",
                daemon=True)
            self._thread.start()
        return self.url

    def shutdown(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self.store.close()

    def __enter__(self) -> "StoreServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

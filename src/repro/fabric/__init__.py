"""The distributed sweep fabric: a network transport for the store.

The store layer (:mod:`repro.store`) already makes every sweep
resumable and dedup'd — run keys are content addresses, so a hit is
definitionally fresh and ``merge_into`` syncs any two stores.  This
package adds the missing piece named by the roadmap: a *network*
transport plus a work-sharing coordinator, turning the experiment grid
into a distributed, resumable job queue with zero third-party
dependencies.

Three layers:

* :mod:`repro.fabric.server` — :class:`StoreServer`, a stdlib
  ``ThreadingHTTPServer`` exposing any local :class:`~repro.store.
  backend.StoreBackend` over HTTP in the content-addressed key
  protocol (``GET/PUT /records/<key>``, batched ``POST /missing``,
  bulk ``POST /records``, ``GET /stats``, ``GET /healthz``).  The CLI
  front-end is ``repro serve``.
* :mod:`repro.fabric.client` — :class:`RemoteStore`, the client-side
  :class:`~repro.store.backend.StoreBackend` for a served store, so
  ``open_store("http://host:port")``, ``merge_into``, ``repro store
  sync`` and ``repro report --from-store`` all work unchanged against
  a remote.  Speaks the same ``KEY_SCHEMA_VERSION`` as the key layer
  and refuses to sync across versions.
* :mod:`repro.fabric.coordinator` — :func:`iter_fabric_runs`, the
  work-sharing coordinator: one batched ``/missing`` call computes the
  sweep's miss-list, the misses are sharded across N worker processes
  (each executing through :func:`~repro.core.executor.iter_runs` into
  a private local shard store and bulk-uploading with retry/backoff),
  and the merged, typed :class:`~repro.core.executor.RunEvent` stream
  reaches the parent.  A killed worker loses nothing: its keys are
  still missing server-side, so the coordinator respawns it (or a
  rerun resumes) and only the absent cells execute.  The CLI
  front-end is ``repro worker``.
"""

from .client import (
    FabricConnectionError,
    FabricError,
    RemoteStore,
    SchemaMismatchError,
)
from .coordinator import (
    FabricWorkerError,
    iter_fabric_runs,
    run_fabric_sweep,
)
from .server import StoreServer

__all__ = [
    "FabricConnectionError",
    "FabricError",
    "FabricWorkerError",
    "RemoteStore",
    "SchemaMismatchError",
    "StoreServer",
    "iter_fabric_runs",
    "run_fabric_sweep",
]

"""The page loader: issues object requests and measures PLT.

Plays the part of Chrome driven over the remote debugging protocol in
the paper (Sec. 3.3): it connects, requests every object of a page, and
records HAR-style per-resource timings.  PLT is "the time to download
all objects on a page" measured from the moment the load starts — DNS is
excluded by construction (there is none), exactly as the paper excludes
it.

The loader is transport-agnostic: it drives anything exposing
``connect(on_ready)`` and ``request(meta, on_complete)`` — both
:class:`~repro.quic.connection.QuicConnection` and
:class:`~repro.tcp.connection.TcpConnection` qualify.  (Chrome's
TCP-vs-QUIC connection racing is intentionally not exercised: like the
paper, experiments pin the protocol per run and verify it from the HAR.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..netem.sim import Simulator
from .objects import WebPage


@dataclass
class ResourceTiming:
    """One HAR entry: request/response timestamps for one object."""

    obj_id: int
    size_bytes: int
    requested_at: Optional[float] = None
    completed_at: Optional[float] = None
    protocol: str = ""

    @property
    def elapsed(self) -> Optional[float]:
        if self.requested_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


@dataclass
class PageLoadResult:
    """The outcome of one page load."""

    page: WebPage
    protocol: str
    started_at: float
    finished_at: Optional[float]
    timings: List[ResourceTiming]
    handshake_ready_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.finished_at is not None

    @property
    def plt(self) -> float:
        """Page load time in seconds (raises if the load never finished)."""
        if self.finished_at is None:
            raise RuntimeError(f"page {self.page.name} did not finish loading")
        return self.finished_at - self.started_at


class PageLoader:
    """Loads one page over one transport connection."""

    def __init__(self, sim: Simulator, connection: Any, page: WebPage,
                 protocol: str) -> None:
        self.sim = sim
        self.connection = connection
        self.page = page
        self.protocol = protocol
        self._timings: Dict[int, ResourceTiming] = {
            o.obj_id: ResourceTiming(o.obj_id, o.size_bytes, protocol=protocol)
            for o in page.objects
        }
        self._outstanding = len(page.objects)
        #: Plain attribute, not a property: the run loop polls this after
        #: every event via ``run_until``'s predicate.
        self.done = False
        self.result = PageLoadResult(
            page=page, protocol=protocol, started_at=sim.now,
            finished_at=None, timings=list(self._timings.values()),
        )

    def start(self) -> None:
        """Begin the load: connect, then request every object."""
        self.result.started_at = self.sim.now
        self.connection.connect(self._on_ready)
        if getattr(self.connection, "handshake_ready_time", None) is not None:
            # QUIC 0-RTT: requests may be issued immediately.
            self._issue_requests()

    def _on_ready(self, now: float) -> None:
        self.result.handshake_ready_at = now
        if any(t.requested_at is None for t in self._timings.values()):
            self._issue_requests()

    def _issue_requests(self) -> None:
        now = self.sim.now
        for obj in self.page.objects:
            timing = self._timings[obj.obj_id]
            if timing.requested_at is not None:
                continue
            timing.requested_at = now
            meta = {"obj": obj.obj_id, "size": obj.size_bytes}
            self.connection.request(meta, self._on_complete)

    def _on_complete(self, _stream_id: int, meta: Any, now: float) -> None:
        timing = self._timings[meta["obj"]]
        if timing.completed_at is not None:
            return
        timing.completed_at = now
        self._outstanding -= 1
        if self._outstanding == 0:
            self.result.finished_at = now
            self.done = True


def load_page(sim: Simulator, connection: Any, page: WebPage, protocol: str,
              timeout: float = 600.0) -> PageLoadResult:
    """Convenience wrapper: run the load to completion on the simulator."""
    loader = PageLoader(sim, connection, page, protocol)
    loader.start()
    sim.run_until(lambda: loader.done, timeout=timeout)
    return loader.result

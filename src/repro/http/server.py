"""Object servers for the PLT experiments.

The server side of the paper's testbed is Apache (TCP) and the Chromium
standalone QUIC server, both serving the same static objects from the
same machine (Fig. 1).  Here both transports share one request handler
built from a :class:`~repro.http.objects.WebPage`: requests carry
``{"obj": id, "size": bytes}`` metadata, responses are the object bytes.

HTTP caching directives / cache clearing (Sec. 3.1) need no modelling —
every simulated request is served in full.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .objects import WebPage

RequestHandler = Callable[[Any], Optional[int]]


def page_request_handler(page: WebPage) -> RequestHandler:
    """Handler serving the objects of one page by id."""
    sizes: Dict[int, int] = {o.obj_id: o.size_bytes for o in page.objects}

    def handler(meta: Any) -> int:
        obj_id = meta["obj"]
        try:
            return sizes[obj_id]
        except KeyError:
            raise KeyError(f"server has no object {obj_id!r} for page {page.name}")

    return handler


def sized_request_handler() -> RequestHandler:
    """Handler that echoes the size the request asks for (raw transfers)."""

    def handler(meta: Any) -> int:
        return int(meta["size"])

    return handler

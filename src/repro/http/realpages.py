"""Synthetic "real web page" corpus (the Das [20] style workload).

The paper deliberately uses uniform pages to isolate size/count effects,
and criticises prior work (Das's mahimahi replay of 500 real pages) for
conflating them (Table 1, footnote 4).  This module provides the other
side of that methodological coin: a generator of *realistic* page
compositions — heavy-tailed object sizes and counts matching published
HTTP Archive shapes — so the corpus-level comparison can be run **next
to** the controlled grids and the conflation the paper warns about can be
demonstrated directly (see ``tests/test_realpages.py``).

Distributions (log-normal, parameterised to HTTP-Archive-era medians):

* objects per page: median ≈ 30, long tail to a few hundred;
* object size: median ≈ 12 KB, long tail to megabytes;
* one "main document" object of 20-100 KB is always present.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from .objects import WebObject, WebPage

#: Log-normal parameters: exp(mu) is the median.
COUNT_MU = math.log(30)
COUNT_SIGMA = 0.7
SIZE_MU = math.log(12 * 1024)
SIZE_SIGMA = 1.4

#: Hard caps keep pathological tails simulable.
MAX_OBJECTS = 300
MAX_OBJECT_BYTES = 8 * 1024 * 1024


def synthetic_page(seed: int, name: Optional[str] = None) -> WebPage:
    """One realistic page composition, deterministic in the seed."""
    rng = random.Random(seed * 2_147_483_647 + 12345)
    count = int(rng.lognormvariate(COUNT_MU, COUNT_SIGMA))
    count = max(1, min(count, MAX_OBJECTS))
    objects: List[WebObject] = []
    # The main document.
    objects.append(WebObject(0, rng.randint(20 * 1024, 100 * 1024)))
    for index in range(1, count):
        size = int(rng.lognormvariate(SIZE_MU, SIZE_SIGMA))
        size = max(200, min(size, MAX_OBJECT_BYTES))
        objects.append(WebObject(index, size))
    return WebPage(name or f"synthetic-{seed}", tuple(objects))


def synthetic_corpus(n_pages: int, seed: int = 0) -> List[WebPage]:
    """A corpus of ``n_pages`` synthetic pages (Das used 500 real ones)."""
    if n_pages < 1:
        raise ValueError("need at least one page")
    return [synthetic_page(seed * 1000 + i) for i in range(n_pages)]


def corpus_statistics(corpus: List[WebPage]) -> dict:
    """Summary statistics a measurement paper would report."""
    counts = sorted(page.object_count for page in corpus)
    totals = sorted(page.total_bytes for page in corpus)

    def median(values):
        mid = len(values) // 2
        return values[mid]

    return {
        "pages": len(corpus),
        "median_objects": median(counts),
        "max_objects": counts[-1],
        "median_total_kb": median(totals) // 1024,
        "max_total_kb": totals[-1] // 1024,
    }

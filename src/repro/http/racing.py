"""Chrome's QUIC/TCP connection racing (paper Sec. 3.3, footnote 9).

Chrome opens a QUIC and a TCP connection to the same server in parallel
and uses whichever establishes first — which is why the paper verifies
the protocol actually used from the HAR instead of trusting its intent.
The paper's experiments pin the protocol per run; this module implements
the racing behaviour itself so that decision can be studied:

* with a cached server config, QUIC's 0-RTT wins instantly;
* without one, QUIC's 1-RTT REJ round still beats TCP's 3-RTT
  TCP+TLS handshake — unless QUIC is blocked (e.g. by a UDP-dropping
  middlebox, modelled by blackholing the QUIC connection), in which case
  the race falls back to TCP, exactly like Chrome behind such networks.
"""

from __future__ import annotations

from typing import Any, Optional

from ..netem.sim import Simulator
from .client import PageLoader, PageLoadResult
from .objects import WebPage


class RacingLoader:
    """Races a QUIC and a TCP connection and loads the page on the winner."""

    def __init__(self, sim: Simulator, quic_connection: Any,
                 tcp_connection: Any, page: WebPage) -> None:
        self.sim = sim
        self.quic_connection = quic_connection
        self.tcp_connection = tcp_connection
        self.page = page
        self.winner: Optional[str] = None
        self.loader: Optional[PageLoader] = None
        self._started_at = 0.0

    def start(self) -> None:
        """Kick off both handshakes; the first ready connection wins."""
        self._started_at = self.sim.now
        self.tcp_connection.connect(lambda now: self._on_ready("tcp", now))
        self.quic_connection.connect(lambda now: self._on_ready("quic", now))
        if self.quic_connection.handshake_ready_time is not None:
            # 0-RTT: QUIC is ready synchronously and wins the race.
            self._on_ready("quic", self.sim.now)

    def _on_ready(self, protocol: str, now: float) -> None:
        if self.winner is not None:
            return
        self.winner = protocol
        connection = (self.quic_connection if protocol == "quic"
                      else self.tcp_connection)
        loser = (self.tcp_connection if protocol == "quic"
                 else self.quic_connection)
        self.loader = PageLoader(self.sim, connection, self.page, protocol)
        # The loader re-calls connect(); both transports treat a second
        # connect as a no-op, and the winner is already ready.
        self.loader.start()
        loser.close()

    @property
    def done(self) -> bool:
        return self.loader is not None and self.loader.done

    @property
    def result(self) -> PageLoadResult:
        if self.loader is None:
            raise RuntimeError("race has not produced a winner yet")
        return self.loader.result

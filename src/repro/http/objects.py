"""Web-page workloads (paper Sec. 3.3 and Table 2).

The paper deliberately uses *simple* pages — static HTML referencing JPG
images of controlled number and size — so PLT reflects transport
efficiency, not browser compute.  A :class:`WebPage` here is exactly
that: a list of objects with sizes; the grid constructors produce the
Table 2 workload matrix, isolating object size from object count (the
isolation prior work lacked, per Table 1 footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

KB = 1024


@dataclass(frozen=True)
class WebObject:
    """One fetchable object."""

    obj_id: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("object size must be positive")


@dataclass(frozen=True)
class WebPage:
    """A page: a name plus the objects a client must fetch."""

    name: str
    objects: Tuple[WebObject, ...]

    @property
    def total_bytes(self) -> int:
        return sum(o.size_bytes for o in self.objects)

    @property
    def object_count(self) -> int:
        return len(self.objects)

    def __str__(self) -> str:
        return self.name


def page(n_objects: int, object_size_bytes: int) -> WebPage:
    """A page of ``n_objects`` equal objects (the paper's workload unit)."""
    if n_objects <= 0:
        raise ValueError("need at least one object")
    objects = tuple(
        WebObject(i, object_size_bytes) for i in range(n_objects)
    )
    kb = object_size_bytes / KB
    return WebPage(f"{n_objects}x{kb:g}KB", objects)


def single_object_page(size_bytes: int) -> WebPage:
    return page(1, size_bytes)


#: Table 2 object sizes (bytes).  210 MB is exercised only by Fig. 11.
SIZE_GRID_BYTES: Tuple[int, ...] = tuple(
    s * KB for s in (5, 10, 100, 200, 500, 1000, 10_000)
)

#: Table 2 object counts; paired with a fixed per-object size so count
#: effects are isolated from size effects.
COUNT_GRID: Tuple[int, ...] = (1, 2, 5, 10, 100, 200)
COUNT_GRID_OBJECT_SIZE: int = 10 * KB


def size_grid_pages() -> List[WebPage]:
    """One single-object page per Table 2 size (Fig. 6a/8a-c workloads)."""
    return [single_object_page(size) for size in SIZE_GRID_BYTES]


def count_grid_pages(object_size_bytes: int = COUNT_GRID_OBJECT_SIZE) -> List[WebPage]:
    """Pages with varying object counts at fixed size (Fig. 6b/8d-f)."""
    return [page(n, object_size_bytes) for n in COUNT_GRID]

"""HTTP-level workloads, page loading, and object serving."""

from .client import PageLoader, PageLoadResult, ResourceTiming, load_page
from .racing import RacingLoader
from .realpages import corpus_statistics, synthetic_corpus, synthetic_page
from .objects import (
    COUNT_GRID,
    COUNT_GRID_OBJECT_SIZE,
    KB,
    SIZE_GRID_BYTES,
    WebObject,
    WebPage,
    count_grid_pages,
    page,
    single_object_page,
    size_grid_pages,
)
from .server import page_request_handler, sized_request_handler

__all__ = [
    "PageLoader",
    "PageLoadResult",
    "ResourceTiming",
    "load_page",
    "RacingLoader",
    "corpus_statistics",
    "synthetic_corpus",
    "synthetic_page",
    "COUNT_GRID",
    "COUNT_GRID_OBJECT_SIZE",
    "KB",
    "SIZE_GRID_BYTES",
    "WebObject",
    "WebPage",
    "count_grid_pages",
    "page",
    "single_object_page",
    "size_grid_pages",
    "page_request_handler",
    "sized_request_handler",
]

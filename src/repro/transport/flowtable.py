"""Array-backed per-flow transport state for the many-flow fast path.

The classic stacks (`repro.quic`, `repro.tcp`) model one connection as
a graph of objects — endpoint, CC controller, RTT estimator, SACK
ranges — which is the right shape for protocol fidelity but costs too
much Python dispatch when a single bottleneck carries ~1000 concurrent
flows.  :class:`FlowTable` keeps the *hot* per-flow scalars (cwnd,
inflight, bytes acked, next sequence index, RFC 6298 RTT estimator
state) in preallocated ``array`` columns indexed by integer flow id, so
the fan-out paths — ack processing, RTO scans, send-window checks —
touch flat C buffers instead of attribute chains.

Congestion control is pluggable: the ``cc=`` axis selects one of the
shared kernels from :mod:`repro.transport.cc.kernels` (``reno`` —
the historical Reno-shaped AIMD, byte-for-byte — plus ``cubic`` and
``bbr``), instantiated per flow in packet units (``mss=1``) from the
per-protocol parameter sets below.  Protocol asymmetry (QUIC's larger
initial window, gentler multiplicative decrease from emulating N
connections, and the MACW cap of the paper's Sec. 5.1) is what
reproduces the Tab. 4 unfairness qualitatively at scale.  RTT
estimation follows RFC 6298 with the same constants as
:class:`repro.transport.rtt.RttEstimator`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .cc.kernels import KERNEL_NAMES, make_kernel

__all__ = ["FlowParams", "FlowTable", "QUIC_PARAMS", "TCP_PARAMS",
           "PROTO_QUIC", "PROTO_TCP"]

#: Values of the ``proto`` column.
PROTO_QUIC = 0
PROTO_TCP = 1

#: Values of the ``state`` column.
STATE_PENDING = 0
STATE_ACTIVE = 1
STATE_DONE = 2

# RFC 6298 constants, matching repro.transport.rtt.RttEstimator.
_ALPHA = 1.0 / 8.0
_BETA = 1.0 / 4.0
_K = 4.0
_MIN_RTO = 0.2
_MAX_RTO = 60.0


@dataclass(frozen=True)
class FlowParams:
    """Per-protocol congestion-control parameters."""

    name: str
    #: Initial window, packets (QUIC's 32 vs TCP's RFC 6928 10).
    initial_window: float
    #: Cap on cwnd, packets (QUIC's MACW = 430; effectively none for TCP).
    max_cwnd: float
    #: Multiplicative-decrease factor.  QUIC emulating N=2 connections
    #: backs off by (N - 1 + 0.7) / N = 0.85 — the Tab. 4 aggression.
    beta: float
    #: Packets past a hole before the receiver declares it lost.
    nack_threshold: int
    #: Chromium N-connection emulation behind ``beta`` (QUIC's 0.85 is
    #: (N - 1 + 0.7) / N with N = 2); the Cubic kernel derives its
    #: TCP-friendly alpha from it.
    emulated_connections: int = 1


QUIC_PARAMS = FlowParams(name="quic", initial_window=32.0,
                         max_cwnd=430.0, beta=0.85, nack_threshold=3,
                         emulated_connections=2)
TCP_PARAMS = FlowParams(name="tcp", initial_window=10.0,
                        max_cwnd=10_000.0, beta=0.7, nack_threshold=3)


class FlowTable:
    """Columnar state for ``capacity`` flows, indexed by flow id.

    Scalar columns are ``array('d')`` / ``array('q')``; per-packet
    bookkeeping (send timestamps, ack flags, receiver gap sets) lives
    in preallocated list-of-columns slots filled in when a flow
    activates, so idle capacity costs a few machine words per flow.
    """

    __slots__ = (
        "capacity", "mss", "cc", "params_by_proto",
        # float columns
        "arrival", "cwnd", "ssthresh", "srtt", "rttvar", "min_rtt",
        "last_progress", "finish",
        # int columns
        "size_bytes", "total_pkts", "next_idx", "inflight", "acked_pkts",
        "snd_una", "recover_idx", "state", "proto",
        "rx_next", "rx_highest", "rx_received", "rx_scan",
        "retx_sent", "lost_pkts",
        # list-of-columns (per-flow objects, allocated on activation)
        "sent_time", "acked", "retx_flag", "pending",
        "retx_queue", "rx_set", "rx_nacked", "kernel",
    )

    def __init__(self, capacity: int, mss: int = 1350,
                 cc: str = "reno") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if cc not in KERNEL_NAMES:
            raise ValueError(
                f"unknown CC kernel {cc!r}; expected one of "
                f"{', '.join(KERNEL_NAMES)}")
        self.capacity = capacity
        self.mss = mss
        self.cc = cc
        self.params_by_proto: Tuple[FlowParams, FlowParams] = (
            QUIC_PARAMS, TCP_PARAMS)
        zd = [0.0] * capacity
        zq = [0] * capacity
        self.arrival = array("d", zd)
        self.cwnd = array("d", zd)
        self.ssthresh = array("d", zd)
        self.srtt = array("d", zd)
        self.rttvar = array("d", zd)
        self.min_rtt = array("d", zd)
        self.last_progress = array("d", zd)
        self.finish = array("d", zd)
        self.size_bytes = array("q", zq)
        self.total_pkts = array("q", zq)
        self.next_idx = array("q", zq)
        self.inflight = array("q", zq)
        self.acked_pkts = array("q", zq)
        self.snd_una = array("q", zq)
        self.recover_idx = array("q", zq)
        self.state = array("q", zq)
        self.proto = array("q", zq)
        self.rx_next = array("q", zq)
        self.rx_highest = array("q", zq)
        self.rx_received = array("q", zq)
        self.rx_scan = array("q", zq)
        self.retx_sent = array("q", zq)
        self.lost_pkts = array("q", zq)
        self.sent_time: List[Optional[array]] = [None] * capacity
        self.acked: List[Optional[bytearray]] = [None] * capacity
        self.retx_flag: List[Optional[bytearray]] = [None] * capacity
        #: 1 while a packet is charged to ``inflight``: set on (re)send,
        #: cleared on first ack or on being declared lost.
        self.pending: List[Optional[bytearray]] = [None] * capacity
        self.retx_queue: List[Optional[list]] = [None] * capacity
        self.rx_set: List[Optional[set]] = [None] * capacity
        self.rx_nacked: List[Optional[set]] = [None] * capacity
        #: Per-flow CC kernel (packet units), allocated on activation.
        self.kernel: List[Optional[object]] = [None] * capacity

    # ------------------------------------------------------------------
    def params(self, flow: int) -> FlowParams:
        return self.params_by_proto[self.proto[flow]]

    def define_flow(self, flow: int, arrival: float, size_bytes: int,
                    proto: int) -> None:
        """Register a flow's workload before it activates."""
        npkts = max(1, -(-size_bytes // self.mss))
        self.arrival[flow] = arrival
        self.size_bytes[flow] = size_bytes
        self.total_pkts[flow] = npkts
        self.proto[flow] = proto
        self.state[flow] = STATE_PENDING

    def activate(self, flow: int, now: float) -> None:
        """Allocate per-packet columns and open the initial window."""
        npkts = self.total_pkts[flow]
        params = self.params_by_proto[self.proto[flow]]
        kernel = make_kernel(self.cc, params)
        self.kernel[flow] = kernel
        self.state[flow] = STATE_ACTIVE
        self.cwnd[flow] = kernel.cwnd
        self.ssthresh[flow] = kernel.ssthresh
        self.last_progress[flow] = now
        self.recover_idx[flow] = -1
        self.sent_time[flow] = array("d", bytes(8 * npkts))
        self.acked[flow] = bytearray(npkts)
        self.retx_flag[flow] = bytearray(npkts)
        self.pending[flow] = bytearray(npkts)
        self.retx_queue[flow] = []
        self.rx_set[flow] = set()
        self.rx_nacked[flow] = set()

    def finish_flow(self, flow: int, now: float) -> None:
        self.state[flow] = STATE_DONE
        self.finish[flow] = now
        # Release the per-packet columns; scalars stay for reporting.
        self.sent_time[flow] = None
        self.acked[flow] = None
        self.retx_flag[flow] = None
        self.pending[flow] = None
        self.retx_queue[flow] = None
        self.rx_set[flow] = None
        self.rx_nacked[flow] = None
        self.kernel[flow] = None

    # ------------------------------------------------------------------
    def rtt_update(self, flow: int, sample: float,
                   now: float = 0.0) -> None:
        """RFC 6298 update on the columnar estimator state."""
        if sample <= 0:
            return
        mrtt = self.min_rtt[flow]
        if mrtt == 0.0 or sample < mrtt:
            self.min_rtt[flow] = sample
        kernel = self.kernel[flow]
        if kernel is not None and kernel.name == "bbr":
            # BBR tracks min-RTT freshness (the ProbeRTT trigger).
            kernel.on_rtt_sample(now, sample, self.min_rtt[flow])
        srtt = self.srtt[flow]
        if srtt == 0.0:
            self.srtt[flow] = sample
            self.rttvar[flow] = sample / 2.0
            return
        delta = srtt - sample if srtt > sample else sample - srtt
        self.rttvar[flow] = (1.0 - _BETA) * self.rttvar[flow] + _BETA * delta
        self.srtt[flow] = (1.0 - _ALPHA) * srtt + _ALPHA * sample

    def rto(self, flow: int) -> float:
        srtt = self.srtt[flow]
        if srtt == 0.0:
            return 1.0  # RFC 6298 initial RTO
        rto = srtt + max(_K * self.rttvar[flow], 0.001)
        return min(max(rto, _MIN_RTO), _MAX_RTO)

    # ------------------------------------------------------------------
    def on_ack(self, flow: int, newly_acked: int,
               now: float = 0.0) -> None:
        """Kernel window growth for ``newly_acked`` packets."""
        if newly_acked <= 0:
            return
        kernel = self.kernel[flow]
        kernel.on_ack(newly_acked, now, self.srtt[flow],
                      self.min_rtt[flow])
        self.cwnd[flow] = kernel.cwnd
        self.ssthresh[flow] = kernel.ssthresh

    def on_loss_event(self, flow: int, now: float = 0.0) -> None:
        """Multiplicative decrease, at most once per window in flight."""
        kernel = self.kernel[flow]
        kernel.on_loss(now, float(self.inflight[flow]))
        self.cwnd[flow] = kernel.cwnd
        self.ssthresh[flow] = kernel.ssthresh
        self.recover_idx[flow] = self.next_idx[flow] - 1

    def on_timeout(self, flow: int, now: float = 0.0) -> None:
        """RTO: collapse to a restart window."""
        kernel = self.kernel[flow]
        kernel.on_timeout(now)
        self.cwnd[flow] = kernel.cwnd
        self.ssthresh[flow] = kernel.ssthresh
        self.recover_idx[flow] = self.next_idx[flow] - 1

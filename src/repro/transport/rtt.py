"""Round-trip-time estimation.

Both transports use the standard SRTT/RTTVAR estimator (RFC 6298), but they
*feed* it very differently — and that difference is one of the paper's key
explanations for QUIC's performance:

* QUIC retransmissions carry **new packet numbers**, so every ACK yields an
  unambiguous sample, and the peer reports its ACK delay so the sample can
  be corrected.  The paper credits this "elimination of ACK ambiguity" for
  QUIC's better bandwidth tracking (Fig. 11).
* TCP must apply Karn's rule (no samples from retransmitted segments) and
  samples only on (delayed) cumulative ACKs, producing fewer and noisier
  samples.

The estimator also keeps a windowed minimum RTT, which Hybrid Slow Start
uses for its delay-increase exit signal.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class RttEstimator:
    """SRTT / RTTVAR / windowed-min RTT tracking (RFC 6298 + min filter)."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self, initial_rtt: float = 0.1,
                 min_rtt_window: float = 10.0) -> None:
        if initial_rtt <= 0:
            raise ValueError("initial_rtt must be positive")
        self.initial_rtt = initial_rtt
        self.min_rtt_window = min_rtt_window
        self.srtt: Optional[float] = None
        self.rttvar: float = initial_rtt / 2.0
        self.latest: Optional[float] = None
        self.samples = 0
        #: (time, rtt) samples kept only while they may be the window min.
        self._min_queue: Deque[Tuple[float, float]] = deque()

    # ------------------------------------------------------------------
    def on_sample(self, rtt: float, now: float, ack_delay: float = 0.0) -> None:
        """Feed one RTT sample taken at simulated time ``now``.

        ``ack_delay`` is the peer-reported delay between receiving the
        packet and sending the ACK; it is subtracted when doing so does not
        push the sample below the current minimum (QUIC's rule).
        """
        if rtt <= 0:
            return
        self.samples += 1
        raw = rtt
        # Maintain the windowed minimum on the *raw* sample.
        while self._min_queue and self._min_queue[-1][1] >= raw:
            self._min_queue.pop()
        self._min_queue.append((now, raw))
        while self._min_queue and now - self._min_queue[0][0] > self.min_rtt_window:
            self._min_queue.popleft()

        adjusted = rtt
        if ack_delay > 0 and rtt - ack_delay >= self.min_rtt():
            adjusted = rtt - ack_delay
        self.latest = adjusted
        if self.srtt is None:
            self.srtt = adjusted
            self.rttvar = adjusted / 2.0
            return
        self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - adjusted)
        self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * adjusted

    # ------------------------------------------------------------------
    def smoothed_rtt(self) -> float:
        """SRTT, or the configured initial RTT before any sample."""
        return self.srtt if self.srtt is not None else self.initial_rtt

    def min_rtt(self) -> float:
        """Minimum RTT observed within the sliding window.

        The deque is maintained monotonically non-decreasing in the RTT
        value, so the front entry is always the window minimum.
        """
        if not self._min_queue:
            return self.initial_rtt
        return self._min_queue[0][1]

    def retransmission_timeout(self, min_rto: float = 0.2,
                               max_rto: float = 60.0) -> float:
        """RFC 6298 RTO with the given floor/ceiling."""
        rto = self.smoothed_rtt() + max(self.K * self.rttvar, 0.001)
        return min(max(rto, min_rto), max_rto)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RttEstimator srtt={self.smoothed_rtt() * 1000:.2f}ms "
            f"var={self.rttvar * 1000:.2f}ms min={self.min_rtt() * 1000:.2f}ms>"
        )

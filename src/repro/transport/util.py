"""Shared transport utilities.

:class:`RangeSet` tracks sets of half-open integer intervals.  It backs

* QUIC stream reassembly (which byte ranges of a stream have arrived),
* TCP out-of-order queues and SACK block generation,
* ACK-block bookkeeping for QUIC packet numbers.

The structure keeps a sorted list of disjoint ``[lo, hi)`` ranges and is
exercised heavily by hypothesis property tests.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

Range = Tuple[int, int]


class RangeSet:
    """A set of non-overlapping half-open integer ranges ``[lo, hi)``.

    Ranges are merged on insertion; adding overlapping or adjacent ranges
    coalesces them.  All query methods run in O(log n) or O(n).
    """

    __slots__ = ("_ranges", "_total")

    def __init__(self, ranges: Optional[Iterable[Range]] = None) -> None:
        self._ranges: List[Range] = []
        self._total = 0
        if ranges:
            for lo, hi in ranges:
                self.add(lo, hi)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, lo: int, hi: int) -> int:
        """Insert ``[lo, hi)``; returns the number of *newly covered* units.

        Adding an empty or inverted range is a no-op returning 0.
        """
        if hi <= lo:
            return 0
        # Fast path: insertion at or beyond the last range.  In-order
        # delivery (the common case on every receive path) only ever
        # appends to or extends the final range, so skip the bisect.
        ranges = self._ranges
        if ranges:
            last_lo, last_hi = ranges[-1]
            if lo >= last_lo:
                if lo > last_hi:
                    ranges.append((lo, hi))
                    self._total += hi - lo
                    return hi - lo
                if hi <= last_hi:
                    return 0
                ranges[-1] = (last_lo, hi)
                added = hi - last_hi
                self._total += added
                return added
        # Find all ranges overlapping or adjacent to [lo, hi).
        i = bisect.bisect_left(self._ranges, (lo, lo)) - 1
        if i >= 0 and self._ranges[i][1] >= lo:
            start = i
        else:
            start = i + 1
        j = start
        new_lo, new_hi = lo, hi
        overlapped = 0
        while j < len(self._ranges) and self._ranges[j][0] <= hi:
            r_lo, r_hi = self._ranges[j]
            overlapped += r_hi - r_lo
            if r_lo < new_lo:
                new_lo = r_lo
            if r_hi > new_hi:
                new_hi = r_hi
            j += 1
        self._ranges[start:j] = [(new_lo, new_hi)]
        added = (new_hi - new_lo) - overlapped
        self._total += added
        return added

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def total(self) -> int:
        """Total number of covered integer units (O(1), kept incrementally)."""
        return self._total

    def contains(self, value: int) -> bool:
        """True if ``value`` lies inside a covered range."""
        i = bisect.bisect_right(self._ranges, (value, float("inf"))) - 1
        return i >= 0 and self._ranges[i][0] <= value < self._ranges[i][1]

    def containing(self, value: int) -> Optional[Range]:
        """The covered range holding ``value``, or None."""
        i = bisect.bisect_right(self._ranges, (value, float("inf"))) - 1
        if i >= 0 and self._ranges[i][0] <= value < self._ranges[i][1]:
            return self._ranges[i]
        return None

    def covers(self, lo: int, hi: int) -> bool:
        """True if the whole ``[lo, hi)`` range is covered."""
        if hi <= lo:
            return True
        i = bisect.bisect_right(self._ranges, (lo, float("inf"))) - 1
        return i >= 0 and self._ranges[i][0] <= lo and self._ranges[i][1] >= hi

    def overlaps(self, lo: int, hi: int) -> bool:
        """True if any part of ``[lo, hi)`` is already covered."""
        if hi <= lo:
            return False
        i = bisect.bisect_left(self._ranges, (lo, lo)) - 1
        if i >= 0 and self._ranges[i][1] > lo:
            return True
        j = i + 1
        return j < len(self._ranges) and self._ranges[j][0] < hi

    def contiguous_from(self, origin: int = 0) -> int:
        """Highest value ``x`` such that ``[origin, x)`` is fully covered.

        This is TCP's ``rcv_nxt`` computation: the in-order delivery
        frontier given out-of-order arrivals.
        """
        i = bisect.bisect_right(self._ranges, (origin, float("inf"))) - 1
        if i >= 0 and self._ranges[i][0] <= origin < self._ranges[i][1]:
            return self._ranges[i][1]
        if i + 1 < len(self._ranges) and self._ranges[i + 1][0] == origin:
            return self._ranges[i + 1][1]
        return origin

    def gaps(self, lo: int, hi: int) -> List[Range]:
        """Uncovered sub-ranges of ``[lo, hi)``."""
        out: List[Range] = []
        cursor = lo
        for r_lo, r_hi in self._ranges:
            if r_hi <= lo:
                continue
            if r_lo >= hi:
                break
            if r_lo > cursor:
                out.append((cursor, min(r_lo, hi)))
            cursor = max(cursor, r_hi)
            if cursor >= hi:
                break
        if cursor < hi:
            out.append((cursor, hi))
        return out

    def ranges(self) -> List[Range]:
        """A copy of the covered ranges, ascending."""
        return list(self._ranges)

    def max_covered(self) -> Optional[int]:
        """Highest covered value + 1 (i.e. the end of the last range)."""
        if not self._ranges:
            return None
        return self._ranges[-1][1]

    def __iter__(self) -> Iterator[Range]:
        return iter(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._ranges == other._ranges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"[{lo},{hi})" for lo, hi in self._ranges[:8])
        more = "..." if len(self._ranges) > 8 else ""
        return f"<RangeSet {inner}{more}>"

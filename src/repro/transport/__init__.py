"""Shared transport machinery: RTT estimation, congestion control, muxing."""

from .base import HostMux, TransportEndpoint, fresh_conn_id, mux_for
from .rtt import RttEstimator
from .util import RangeSet

__all__ = [
    "HostMux",
    "TransportEndpoint",
    "fresh_conn_id",
    "mux_for",
    "RttEstimator",
    "RangeSet",
]

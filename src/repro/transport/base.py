"""Shared endpoint plumbing for both transports.

A :class:`HostMux` demultiplexes packets arriving at a host node to the
transport endpoints living there (by connection ID, the role UDP/TCP
ports play in the real stack).  :class:`TransportEndpoint` provides the
common conveniences — simulator access, packet emission, connection IDs —
that :mod:`repro.quic` and :mod:`repro.tcp` build on.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..netem.node import Node
from ..netem.packet import HEADER_BYTES, Packet
from ..netem.sim import Simulator

_conn_ids = itertools.count(1)


def fresh_conn_id(prefix: str) -> str:
    """Globally unique connection identifier, e.g. ``quic-17``."""
    return f"{prefix}-{next(_conn_ids)}"


class HostMux:
    """Connection-ID demultiplexer installed as a node's local handler.

    One mux per host node; endpoints register under their connection ID.
    A *listener* can be installed to accept packets for connections that
    do not exist yet (a server accepting new clients).
    """

    def __init__(self, node: Node) -> None:
        self.node = node
        self._endpoints: Dict[str, Callable[[Packet], None]] = {}
        self._listener: Optional[Callable[[Packet], None]] = None
        node.register_handler(self._dispatch)
        self.unroutable = 0

    def register(self, conn_id: str, handler: Callable[[Packet], None]) -> None:
        if conn_id in self._endpoints:
            raise ValueError(f"connection {conn_id!r} already registered")
        self._endpoints[conn_id] = handler

    def unregister(self, conn_id: str) -> None:
        self._endpoints.pop(conn_id, None)

    def set_listener(self, listener: Callable[[Packet], None]) -> None:
        self._listener = listener

    def _dispatch(self, packet: Packet) -> None:
        conn_id = getattr(packet.payload, "conn_id", None)
        handler = self._endpoints.get(conn_id)
        if handler is not None:
            handler(packet)
        elif self._listener is not None:
            self._listener(packet)
        else:
            self.unroutable += 1


def mux_for(node: Node) -> HostMux:
    """Get or lazily create the :class:`HostMux` for a host node."""
    existing = getattr(node, "_host_mux", None)
    if existing is None:
        existing = HostMux(node)
        node._host_mux = existing  # type: ignore[attr-defined]
    return existing


class TransportEndpoint:
    """Base class for one side of a transport connection."""

    def __init__(self, sim: Simulator, node: Node, conn_id: str,
                 peer_addr: str, flow_id: Optional[str] = None) -> None:
        self.sim = sim
        self.node = node
        self.conn_id = conn_id
        self.peer_addr = peer_addr
        self.flow_id = flow_id if flow_id is not None else conn_id
        self.mux = mux_for(node)
        self.mux.register(conn_id, self.on_packet)
        self.closed = False

    # ------------------------------------------------------------------
    def emit(self, payload: Any, payload_bytes: int) -> None:
        """Send one packet to the peer (adds wire header overhead)."""
        self.node.send(Packet(self.node.name, self.peer_addr,
                              payload_bytes + HEADER_BYTES, payload,
                              self.flow_id))

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.mux.unregister(self.conn_id)

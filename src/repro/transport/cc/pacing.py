"""Packet pacing.

QUIC spaces transmissions to avoid the bursty losses that tail-drop
buffers inflict on window-clocked senders (paper Sec. 2.1).  The pacer is
a leaky bucket over departure times: each packet's release time is
``max(now, last_release) + size / rate``, with a small burst allowance so
short flows are not needlessly delayed (Chromium allows an initial burst
of 10 packets, and lumps of 2 thereafter).
"""

from __future__ import annotations

from typing import Optional


class Pacer:
    """Computes packet release times for a paced sender."""

    __slots__ = ("_next_release", "_burst_tokens", "_lump", "_lump_tokens")

    def __init__(self, initial_burst_packets: int = 10,
                 lump_packets: int = 2) -> None:
        self._next_release = 0.0
        self._burst_tokens = initial_burst_packets
        self._lump = max(lump_packets, 1)
        self._lump_tokens = 0

    def release_time(self, now: float, size_bytes: int,
                     rate_bytes_per_sec: Optional[float]) -> float:
        """When the next packet of ``size_bytes`` may leave.

        Call exactly once per packet, in send order.  ``rate`` of ``None``
        disables pacing (the packet may leave immediately).
        """
        if rate_bytes_per_sec is None or rate_bytes_per_sec <= 0:
            self._next_release = now
            return now
        interval = size_bytes / rate_bytes_per_sec
        if self._burst_tokens > 0:
            self._burst_tokens -= 1
            if self._next_release < now:
                self._next_release = now
            return self._next_release
        if self._next_release <= now:
            # Idle pacer: allow a small lump before spacing resumes.
            if self._lump_tokens <= 0:
                self._lump_tokens = self._lump
            self._lump_tokens -= 1
            if self._lump_tokens > 0:
                self._next_release = now
                return now
            self._next_release = now + interval
            return now
        release = self._next_release
        self._next_release = release + interval
        return release

    def on_idle(self, now: float) -> None:
        """Reset spacing after the sender has been quiescent."""
        if self._next_release < now:
            self._next_release = now

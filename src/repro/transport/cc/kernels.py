"""Pure congestion-control kernels shared by every CC consumer.

The repo used to carry two divergent CC implementations: the
:class:`~repro.transport.cc.interface.CongestionController` class family
(Cubic, BBR) driving per-packet QUIC/TCP connections, and a separate
hardcoded Reno-shaped AIMD inside :class:`repro.transport.flowtable.FlowTable`
for the thousand-flow fast path.  This module is the single home for the
window arithmetic: small, allocation-light kernel objects with a shared
step API —

* ``on_ack(acked, now, srtt, min_rtt)`` — window growth for newly-acked
  data,
* ``on_loss(now, in_flight)`` — multiplicative decrease / loss reaction,
* ``on_timeout(now)`` — RTO collapse,
* exported ``cwnd`` / ``ssthresh`` state and ``pacing_rate(srtt)``.

Kernels are **unit-agnostic**: all window quantities are in multiples of
``mss``.  The per-packet adapters instantiate them with ``mss`` in bytes
(cwnd in bytes); :class:`~repro.transport.flowtable.FlowTable` uses
``mss=1.0`` so cwnd is in packets, exactly matching its columnar state.
Kernels are also **pure** in the sense that they touch no clocks, RNGs,
traces or estimators — time and RTT state are passed in — which is what
makes the kernel-vs-adapter equivalence suite and the analytical-model
oracles of :mod:`repro.core.models` possible.

All state overlays (recovery bookkeeping, PRR, Hybrid Slow Start exits,
receiver-buffer ssthresh anchoring, Table 3 state logging) stay in the
adapters; they reach in through the mutable ``cwnd`` / ``ssthresh``
attributes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

__all__ = [
    "BBRKernel",
    "CubicKernel",
    "KERNEL_NAMES",
    "RenoKernel",
    "make_kernel",
]

#: The pluggable CC axis accepted by ``ManyflowConfig.cc`` / ``repro
#: manyflow --cc``.
KERNEL_NAMES = ("reno", "cubic", "bbr")

# BBR mode strings, matching repro.transport.cc.interface.BBRState values
# (kernels stay import-free of the adapter layer).
BBR_STARTUP = "Startup"
BBR_DRAIN = "Drain"
BBR_PROBE_BW = "ProbeBW"
BBR_PROBE_RTT = "ProbeRTT"

#: Startup/drain gains: 2/ln(2).
BBR_STARTUP_GAIN = 2.885
BBR_DRAIN_GAIN = 1.0 / BBR_STARTUP_GAIN
#: ProbeBW pacing-gain cycle.
BBR_PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: Bandwidth filter window, in round trips (approximated by time).
BBR_BW_WINDOW_ROUNDS = 10
#: Min-RTT validity window and ProbeRTT dwell, seconds.
BBR_MIN_RTT_WINDOW = 10.0
BBR_PROBE_RTT_DURATION = 0.2


class RenoKernel:
    """Reno-shaped AIMD — the historical :class:`FlowTable` arithmetic.

    Slow start adds one ``mss`` per acked segment, congestion avoidance
    ``acked/cwnd``; loss multiplies by ``beta`` (protocol asymmetry —
    QUIC's N-connection-emulation 0.85 vs TCP's 0.7 — lives in ``beta``);
    an RTO collapses to the restart window.  ``max_cwnd`` models the MACW
    cap of the paper's Sec. 5.1.
    """

    name = "reno"

    __slots__ = ("cwnd", "ssthresh", "beta", "max_cwnd", "min_cwnd")

    def __init__(self, *, initial_cwnd: float, max_cwnd: float,
                 beta: float, min_cwnd: float = 2.0,
                 ssthresh: Optional[float] = None) -> None:
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(max_cwnd if ssthresh is None else ssthresh)
        self.beta = beta
        self.max_cwnd = float(max_cwnd)
        self.min_cwnd = float(min_cwnd)

    def on_ack(self, acked: float, now: float = 0.0, srtt: float = 0.0,
               min_rtt: float = 0.0) -> None:
        cwnd = self.cwnd
        if cwnd < self.ssthresh:
            cwnd += float(acked)  # slow start
        else:
            cwnd += acked / cwnd  # congestion avoidance
        cap = self.max_cwnd
        self.cwnd = cwnd if cwnd < cap else cap

    def on_loss(self, now: float = 0.0, in_flight: float = 0.0) -> None:
        cwnd = max(self.cwnd * self.beta, self.min_cwnd)
        self.cwnd = cwnd
        self.ssthresh = cwnd

    def on_timeout(self, now: float = 0.0) -> None:
        self.ssthresh = max(self.cwnd * self.beta, self.min_cwnd)
        self.cwnd = self.min_cwnd

    def pacing_rate(self, srtt: float = 0.0) -> Optional[float]:
        return None  # the Reno path is ack-clocked, not paced


class CubicKernel:
    """RFC-8312-style Cubic with the Chromium extensions the paper uses.

    Carries the cubic epoch variables (``w_max``, ``k``, origin point,
    Reno-friendly ``w_est``) and implements the exact Chromium growth
    arithmetic previously inlined in ``CubicCC``: cubic target with the
    1.5x-per-RTT clamp, TCP-friendly region scaled by ``reno_alpha``
    (``3 N² (1-beta) / (1+beta)`` for N emulated connections), fast
    convergence, and the MACW clamp.

    ``beta`` here is the *scaled* beta (``(N - 1 + beta) / N``); the
    adapter computes it from its config.  ``on_loss`` applies the
    non-PRR reduction (``cwnd = ssthresh``); an adapter running PRR
    saves and restores ``cwnd`` around the call, since PRR rations
    sending without shrinking the window immediately.
    """

    name = "cubic"

    __slots__ = (
        "cwnd", "ssthresh", "mss", "min_cwnd", "max_cwnd", "cubic_c",
        "beta", "reno_alpha", "fast_convergence",
        "w_max", "epoch_start", "k", "origin_point", "w_est",
        "pacing_gain_slow_start", "pacing_gain_ca",
    )

    def __init__(self, *, mss: float, initial_cwnd: float,
                 min_cwnd: float, max_cwnd: Optional[float],
                 ssthresh: float = float("inf"), cubic_c: float = 0.4,
                 beta: float = 0.7, reno_alpha: float = 0.5294117647058824,
                 fast_convergence: bool = True,
                 pacing_gain_slow_start: Optional[float] = 2.0,
                 pacing_gain_ca: Optional[float] = 1.25) -> None:
        self.mss = float(mss)
        self.cwnd = float(initial_cwnd)
        self.min_cwnd = float(min_cwnd)
        self.max_cwnd = float(max_cwnd) if max_cwnd is not None else None
        self.ssthresh = float(ssthresh)
        self.cubic_c = cubic_c
        self.beta = beta
        self.reno_alpha = reno_alpha
        self.fast_convergence = fast_convergence
        self.pacing_gain_slow_start = pacing_gain_slow_start
        self.pacing_gain_ca = pacing_gain_ca
        # Cubic epoch variables (packet units, i.e. multiples of mss).
        self.w_max: float = 0.0
        self.epoch_start: Optional[float] = None
        self.k: float = 0.0
        self.origin_point: float = 0.0
        self.w_est: float = 0.0

    def on_ack(self, acked: float, now: float = 0.0, srtt: float = 0.0,
               min_rtt: float = 0.0) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += acked  # slow start
        else:
            self._congestion_avoidance(acked, now, min_rtt)
        self.clamp()

    def _congestion_avoidance(self, acked: float, now: float,
                              min_rtt: float) -> None:
        """Cubic window growth with the TCP-friendly (Reno) floor."""
        cwnd_packets = self.cwnd / self.mss
        if self.epoch_start is None:
            self.epoch_start = now
            if cwnd_packets < self.w_max:
                self.k = ((self.w_max - cwnd_packets)
                          / self.cubic_c) ** (1.0 / 3.0)
                self.origin_point = self.w_max
            else:
                self.k = 0.0
                self.origin_point = cwnd_packets
            self.w_est = cwnd_packets
        t = now - self.epoch_start + min_rtt
        target = self.origin_point + self.cubic_c * (t - self.k) ** 3
        # TCP-friendly region (scaled for N emulated connections).
        self.w_est += self.reno_alpha * (acked / self.cwnd)
        target = max(target, self.w_est)
        # Limit growth to 1.5x per RTT worth of ACKs (Chromium clamp).
        if target > cwnd_packets:
            increase = (target - cwnd_packets) / cwnd_packets
            self.cwnd += min(increase, 0.5) * acked
        else:
            # Below the cubic curve: still grow slowly (1 packet / 100 acks).
            self.cwnd += acked / (100.0 * cwnd_packets) * 1.0

    def on_loss(self, now: float = 0.0, in_flight: float = 0.0) -> None:
        cwnd_packets = self.cwnd / self.mss
        if self.fast_convergence and cwnd_packets < self.w_max:
            self.w_max = cwnd_packets * (1.0 + self.beta) / 2.0
        else:
            self.w_max = cwnd_packets
        self.ssthresh = max(self.cwnd * self.beta, self.min_cwnd)
        self.epoch_start = None
        self.cwnd = self.ssthresh

    def on_recovery_exit(self) -> None:
        self.cwnd = max(self.ssthresh, self.min_cwnd)
        self.clamp()

    def on_timeout(self, now: float = 0.0) -> None:
        self.ssthresh = max(self.cwnd * self.beta, self.min_cwnd)
        self.cwnd = self.min_cwnd
        self.epoch_start = None
        self.w_max = max(self.w_max, self.ssthresh / self.mss)

    def clamp(self) -> None:
        if self.max_cwnd is not None and self.cwnd > self.max_cwnd:
            self.cwnd = self.max_cwnd
        if self.cwnd < self.min_cwnd:
            self.cwnd = self.min_cwnd

    def pacing_rate(self, srtt: float = 0.0) -> Optional[float]:
        if self.cwnd < self.ssthresh:
            gain = self.pacing_gain_slow_start
        else:
            gain = self.pacing_gain_ca
        if gain is None:
            return None
        if srtt < 1e-6:
            srtt = 1e-6
        return gain * self.cwnd / srtt


class BBRKernel:
    """Simplified BBR v1: bandwidth filter, four-mode machine, BDP cwnd.

    Owns the windowed-max delivery-rate filter and the
    Startup/Drain/ProbeBW/ProbeRTT progression previously inlined in the
    ``BBR`` controller class.  Loss handling is BBR's shallow reaction —
    ``on_loss`` caps cwnd at in-flight (packet conservation); the
    *recovery overlay* (state logging, exit on next ack) stays in the
    adapter, which reads :attr:`mode` to know what to restore.
    """

    name = "bbr"

    __slots__ = (
        "cwnd", "ssthresh", "mss", "min_cwnd", "max_cwnd", "mode",
        "pacing_gain", "cwnd_gain", "bw_samples", "full_bw",
        "full_bw_rounds", "cycle_index", "cycle_start",
        "probe_rtt_done_at", "min_rtt_stamp", "last_ack_time",
        "drain_entered_at",
    )

    def __init__(self, *, mss: float, initial_cwnd: Optional[float] = None,
                 min_cwnd: Optional[float] = None,
                 max_cwnd: Optional[float] = None) -> None:
        self.mss = float(mss)
        self.cwnd = float(initial_cwnd if initial_cwnd is not None
                          else 32 * mss)
        self.min_cwnd = float(min_cwnd if min_cwnd is not None
                              else 4 * mss)
        self.max_cwnd = float(max_cwnd) if max_cwnd is not None else None
        self.ssthresh = float("inf")  # BBR has no slow-start threshold
        self.mode = BBR_STARTUP
        self.pacing_gain = BBR_STARTUP_GAIN
        self.cwnd_gain = BBR_STARTUP_GAIN
        #: (time, units/sec) max filter over a sliding window.
        self.bw_samples: Deque[Tuple[float, float]] = deque()
        self.full_bw = 0.0
        self.full_bw_rounds = 0
        self.cycle_index = 0
        self.cycle_start = 0.0
        self.probe_rtt_done_at: Optional[float] = None
        self.min_rtt_stamp = 0.0
        self.last_ack_time: Optional[float] = None
        self.drain_entered_at = 0.0

    # ------------------------------------------------------------------
    def bandwidth(self) -> float:
        return max((bw for _, bw in self.bw_samples), default=0.0)

    def on_ack(self, acked: float, now: float = 0.0, srtt: float = 0.0,
               min_rtt: float = 0.0) -> None:
        # Delivery-rate sample: units delivered / inter-ACK time.
        if self.last_ack_time is not None and now > self.last_ack_time:
            rate = acked / (now - self.last_ack_time)
            self._push_bw_sample(now, rate, srtt)
        self.last_ack_time = now
        self._update_mode(now, srtt, min_rtt)
        self._update_cwnd(acked, min_rtt)

    def on_rtt_sample(self, now: float, rtt: float, min_rtt: float) -> None:
        if rtt <= min_rtt + 1e-9:
            self.min_rtt_stamp = now

    def on_loss(self, now: float = 0.0, in_flight: float = 0.0) -> None:
        # BBR v1 reacts to loss only with packet conservation: cap cwnd
        # at in-flight for one round (the adapter's recovery overlay).
        self.cwnd = max(float(in_flight), self.min_cwnd)

    def on_timeout(self, now: float = 0.0) -> None:
        self.cwnd = self.min_cwnd

    def pacing_rate(self, srtt: float = 0.0) -> Optional[float]:
        bw = self.bandwidth()
        if bw <= 0:
            # No estimate yet: pace off the initial window.
            return BBR_STARTUP_GAIN * self.cwnd / max(srtt, 1e-6)
        return self.pacing_gain * bw

    # ------------------------------------------------------------------
    def _push_bw_sample(self, now: float, rate: float, srtt: float) -> None:
        window = BBR_BW_WINDOW_ROUNDS * max(srtt, 1e-3)
        self.bw_samples.append((now, rate))
        while self.bw_samples and now - self.bw_samples[0][0] > window:
            self.bw_samples.popleft()

    def _update_mode(self, now: float, srtt: float, min_rtt: float) -> None:
        mode = self.mode
        if mode == BBR_STARTUP:
            self._check_full_pipe()
            if self.full_bw_rounds >= 3:
                self._enter(BBR_DRAIN, BBR_DRAIN_GAIN, 2.0)
                self.drain_entered_at = now
        elif mode == BBR_DRAIN:
            # The startup queue drains within about one smoothed RTT of
            # pacing below the bottleneck rate.
            if now - self.drain_entered_at >= 1.5 * srtt:
                self._enter_probe_bw(now)
        elif mode == BBR_PROBE_BW:
            cycle_len = max(min_rtt, 1e-3)
            if now - self.cycle_start > cycle_len:
                self.cycle_index = ((self.cycle_index + 1)
                                    % len(BBR_PROBE_BW_GAINS))
                self.pacing_gain = BBR_PROBE_BW_GAINS[self.cycle_index]
                self.cycle_start = now
            if now - self.min_rtt_stamp > BBR_MIN_RTT_WINDOW:
                self._enter(BBR_PROBE_RTT, 1.0, 1.0)
                self.probe_rtt_done_at = now + BBR_PROBE_RTT_DURATION
        elif mode == BBR_PROBE_RTT:
            if (self.probe_rtt_done_at is not None
                    and now >= self.probe_rtt_done_at):
                self.min_rtt_stamp = now
                if self.full_bw_rounds >= 3:
                    self._enter_probe_bw(now)
                else:
                    self._enter(BBR_STARTUP, BBR_STARTUP_GAIN,
                                BBR_STARTUP_GAIN)

    def _check_full_pipe(self) -> None:
        bw = self.bandwidth()
        if bw > self.full_bw * 1.25:
            self.full_bw = bw
            self.full_bw_rounds = 0
        elif bw > 0:
            self.full_bw_rounds += 1

    def _enter(self, mode: str, pacing_gain: float,
               cwnd_gain: float) -> None:
        self.mode = mode
        self.pacing_gain = pacing_gain
        self.cwnd_gain = cwnd_gain

    def _enter_probe_bw(self, now: float) -> None:
        self._enter(BBR_PROBE_BW, BBR_PROBE_BW_GAINS[0], 2.0)
        self.cycle_index = 0
        self.cycle_start = now

    def _update_cwnd(self, acked: float, min_rtt: float) -> None:
        if self.mode == BBR_PROBE_RTT:
            self.cwnd = max(self.min_cwnd, 4 * self.mss)
            return
        bdp = self.bandwidth() * min_rtt
        target = self.cwnd_gain * bdp
        if target <= 0:
            target = self.cwnd + acked
        if self.cwnd < target:
            self.cwnd = min(self.cwnd + acked, target + acked)
        else:
            self.cwnd = max(target, self.min_cwnd)
        if self.max_cwnd is not None and self.cwnd > self.max_cwnd:
            self.cwnd = self.max_cwnd
        if self.cwnd < self.min_cwnd:
            self.cwnd = self.min_cwnd


def make_kernel(name: str, params: "object", mss: float = 1.0):
    """Build a packet-unit kernel for :class:`FlowTable`.

    ``params`` is a :class:`~repro.transport.flowtable.FlowParams`; the
    mapping keeps the Reno axis byte-for-byte identical to the historical
    columnar AIMD (initial window, MACW cap, protocol beta), and derives
    the Cubic scaled-beta/alpha from the same per-protocol constants
    (QUIC's beta 0.85 is the N=2 emulation of Sec. 5.1).
    """
    if name == "reno":
        return RenoKernel(initial_cwnd=params.initial_window,
                          max_cwnd=params.max_cwnd, beta=params.beta,
                          min_cwnd=2.0)
    if name == "cubic":
        n = max(getattr(params, "emulated_connections", 1), 1)
        beta = params.beta
        reno_alpha = 3.0 * n * n * (1.0 - beta) / (1.0 + beta)
        return CubicKernel(mss=mss, initial_cwnd=params.initial_window,
                           min_cwnd=2.0, max_cwnd=params.max_cwnd,
                           ssthresh=params.max_cwnd, beta=beta,
                           reno_alpha=reno_alpha)
    if name == "bbr":
        return BBRKernel(mss=mss, initial_cwnd=params.initial_window,
                         min_cwnd=4.0, max_cwnd=params.max_cwnd)
    raise ValueError(
        f"unknown CC kernel {name!r}; expected one of "
        f"{', '.join(KERNEL_NAMES)}")

"""Proportional Rate Reduction (RFC 6937).

Both QUIC (paper Sec. 2.1) and modern Linux TCP use PRR to spread the
window reduction over a recovery episode instead of stalling transmission.
The algorithm paces retransmissions/new data so that by the end of
recovery exactly ``ssthresh`` bytes are in flight.
"""

from __future__ import annotations


class ProportionalRateReduction:
    """One PRR episode; create a fresh instance per congestion event."""

    def __init__(self, ssthresh_bytes: int, cwnd_at_loss: int,
                 in_flight_at_loss: int, mss: int) -> None:
        self.ssthresh = max(ssthresh_bytes, mss)
        #: RecoverFS in the RFC: in-flight when recovery started.
        self.recover_fs = max(in_flight_at_loss, 1)
        self.mss = mss
        self.prr_delivered = 0
        self.prr_out = 0

    def on_ack(self, delivered_bytes: int) -> None:
        """Account bytes newly delivered (cum-acked or SACKed) to the peer."""
        self.prr_delivered += max(delivered_bytes, 0)

    def on_sent(self, sent_bytes: int) -> None:
        """Account bytes we transmitted during recovery."""
        self.prr_out += max(sent_bytes, 0)

    def can_send(self, in_flight: int) -> int:
        """Bytes allowed to be sent right now (RFC 6937 with SSRB).

        * If in-flight exceeds ssthresh: proportional reduction —
          ``sndcnt = ceil(prr_delivered * ssthresh / RecoverFS) - prr_out``.
        * Otherwise: slow-start rebound — send the larger of what was
          delivered and one MSS, but never exceed ssthresh.
        """
        if in_flight > self.ssthresh:
            budget = (
                (self.prr_delivered * self.ssthresh + self.recover_fs - 1)
                // self.recover_fs
            ) - self.prr_out
            return max(budget, 0)
        # Slow-start rebound (SSRB): grow back toward ssthresh.
        limit = max(self.prr_delivered - self.prr_out, self.mss)
        return max(min(limit, self.ssthresh - in_flight), 0)

"""Congestion-control implementations shared by QUIC and TCP.

The window arithmetic lives in the pure kernels of :mod:`.kernels`
(``RenoKernel`` / ``CubicKernel`` / ``BBRKernel``); the
:class:`CongestionController` classes are trace-emitting adapters over
them, and :class:`repro.transport.flowtable.FlowTable` drives the same
kernels in packet units for the many-flow fast path.
"""

from .bbr import BBR, BBRState
from .cubic import CubicCC, CubicConfig
from .hybrid_slow_start import HybridSlowStart
from .interface import CCState, CongestionController
from .kernels import BBRKernel, CubicKernel, KERNEL_NAMES, RenoKernel, make_kernel
from .pacing import Pacer
from .prr import ProportionalRateReduction

__all__ = [
    "BBR",
    "BBRKernel",
    "BBRState",
    "CubicCC",
    "CubicConfig",
    "CubicKernel",
    "HybridSlowStart",
    "CCState",
    "CongestionController",
    "KERNEL_NAMES",
    "Pacer",
    "ProportionalRateReduction",
    "RenoKernel",
    "make_kernel",
]

"""Congestion-control implementations shared by QUIC and TCP."""

from .bbr import BBR, BBRState
from .cubic import CubicCC, CubicConfig
from .hybrid_slow_start import HybridSlowStart
from .interface import CCState, CongestionController
from .pacing import Pacer
from .prr import ProportionalRateReduction

__all__ = [
    "BBR",
    "BBRState",
    "CubicCC",
    "CubicConfig",
    "HybridSlowStart",
    "CCState",
    "CongestionController",
    "Pacer",
    "ProportionalRateReduction",
]

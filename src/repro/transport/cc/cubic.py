"""Cubic congestion control, parameterised for both QUIC and TCP.

The paper's central protocol comparison is *Cubic vs. Cubic*: "we expect
that QUIC and TCP should be relatively fair to each other because they
both use the Cubic congestion control protocol" (Sec. 5.1) — and yet QUIC
wins, because of how it is *driven* (per-packet unambiguous ACKs, pacing,
N-connection emulation, PRR, TLP, a maximum allowed congestion window).

This class implements RFC-8312-style Cubic with the Chromium extensions
the paper discusses:

* **N-connection emulation** (``num_emulated_connections``): Chromium's
  ``cubic.cc`` scales beta to ``(N - 1 + 0.7) / N`` and the Reno-friendly
  alpha to ``3 N² (1 - beta) / (1 + beta)`` so one QUIC connection behaves
  like N TCP connections (default N=2 in QUIC 34, N=1 in QUIC 37).
* **Maximum allowed congestion window** (``max_cwnd_packets``): the MACW
  of Sec. 4.1/5.4 — 107 packets in the uncalibrated public server, 430 in
  Chrome at paper time, 2000 in QUIC 37.  Hitting it puts the sender in
  the ``CongestionAvoidanceMaxed`` state of Table 3.
* **Hybrid Slow Start** with Chromium's delay-increase exit.
* **PRR** during recovery.
* The **Chromium-52 ssthresh bug** (Sec. 4.1): when
  ``ssthresh_from_receiver_buffer`` is False, ssthresh stays at the small
  ``buggy_initial_ssthresh_packets`` default instead of being raised to
  the receiver-advertised buffer, forcing an early slow-start exit.

State bookkeeping follows Table 3; transitions are logged to the attached
:class:`~repro.core.instrumentation.Trace` for state-machine inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ...core.instrumentation import Trace
from ..rtt import RttEstimator
from .hybrid_slow_start import HybridSlowStart
from .interface import CCState, CongestionController
from .prr import ProportionalRateReduction


@dataclass
class CubicConfig:
    """Tunables for one Cubic instance.

    The defaults correspond to QUIC version 34 as calibrated in the paper
    (Sec. 4.1); :mod:`repro.quic.config` and :mod:`repro.tcp.config`
    derive protocol- and version-specific variants.
    """

    mss: int = 1350
    #: Initial congestion window, packets (Chromium QUIC default).
    initial_cwnd_packets: int = 32
    #: Maximum allowed congestion window (MACW), packets; None = unlimited.
    max_cwnd_packets: Optional[int] = 430
    #: Minimum window after an RTO, packets.
    min_cwnd_packets: int = 2
    #: Cubic scaling constant C (packets/sec^3) and backoff beta.
    cubic_c: float = 0.4
    beta: float = 0.7
    #: Chromium's N-connection emulation (Sec. 5.1).
    num_emulated_connections: int = 1
    #: Fast convergence halves W_max further on repeated losses.
    fast_convergence: bool = True
    #: Hybrid Slow Start on/off and sensitivity.
    hybrid_slow_start: bool = True
    hss_threshold_divisor: float = 8.0
    #: Proportional rate reduction during recovery.
    prr: bool = True
    #: Pacing gains (bytes/sec = gain * cwnd / srtt); None disables pacing.
    pacing_gain_slow_start: Optional[float] = 2.0
    pacing_gain_ca: Optional[float] = 1.25
    #: Receiver-buffer-driven ssthresh initialisation (the Chromium-52
    #: bug of Sec. 4.1 is modelled by turning this off).
    ssthresh_from_receiver_buffer: bool = True
    buggy_initial_ssthresh_packets: int = 100

    def scaled_beta(self) -> float:
        n = max(self.num_emulated_connections, 1)
        return (n - 1 + self.beta) / n

    def reno_alpha(self) -> float:
        """TCP-friendly additive-increase factor for N emulated connections."""
        n = max(self.num_emulated_connections, 1)
        beta = self.scaled_beta()
        return 3.0 * n * n * (1.0 - beta) / (1.0 + beta)


class CubicCC(CongestionController):
    """Cubic with Hybrid Slow Start, PRR, MACW and N-connection emulation."""

    def __init__(self, config: CubicConfig, rtt: RttEstimator,
                 trace: Optional[Trace] = None) -> None:
        super().__init__(trace)
        self.config = config
        self.rtt = rtt
        self._cwnd = config.initial_cwnd_packets * config.mss
        self._min_cwnd = config.min_cwnd_packets * config.mss
        self._max_cwnd = (
            config.max_cwnd_packets * config.mss
            if config.max_cwnd_packets is not None
            else None
        )
        if config.ssthresh_from_receiver_buffer:
            self._ssthresh: float = float("inf")
        else:
            # Chromium-52 bug: ssthresh never raised to the receiver buffer.
            self._ssthresh = config.buggy_initial_ssthresh_packets * config.mss
        self._hss = HybridSlowStart(config.hss_threshold_divisor)
        # Cubic epoch variables (packet units).
        self._w_max: float = 0.0
        self._epoch_start: Optional[float] = None
        self._k: float = 0.0
        self._origin_point: float = 0.0
        self._w_est: float = 0.0
        self._prr: Optional[ProportionalRateReduction] = None
        self._in_recovery = False
        self._in_rto = False
        self._in_tlp = False
        self._app_limited = False
        #: Phase when no overlay (recovery/RTO/TLP/app-limited) is active.
        self._started = False
        # Statistics for root-cause analysis.
        self.loss_events = 0
        self.rto_events = 0
        self.slow_start_exits_by_delay = 0
        self.trace.log_state(0.0, CCState.INIT.value)
        self.trace.log_cwnd(0.0, self._cwnd)

    # ------------------------------------------------------------------
    # window & pacing
    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self._cwnd)

    @property
    def ssthresh(self) -> float:
        return self._ssthresh

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self._ssthresh and not self._in_recovery

    @property
    def in_recovery(self) -> bool:
        return self._in_recovery

    def can_send_bytes(self, in_flight: int) -> int:
        if self._in_recovery and self._prr is not None:
            return self._prr.can_send(in_flight)
        budget = int(self._cwnd) - in_flight
        return budget if budget > 0 else 0

    def pacing_rate(self) -> Optional[float]:
        # Inlined in_slow_start and clamp: called once per sent packet.
        if self._cwnd < self._ssthresh and not self._in_recovery:
            gain = self.config.pacing_gain_slow_start
        else:
            gain = self.config.pacing_gain_ca
        if gain is None:
            return None
        srtt = self.rtt.smoothed_rtt()
        if srtt < 1e-6:
            srtt = 1e-6
        return gain * self._cwnd / srtt

    # ------------------------------------------------------------------
    # receiver buffer (calibration / Chromium-52 bug)
    # ------------------------------------------------------------------
    def on_receiver_buffer(self, buffer_bytes: int) -> None:
        """Receiver advertised its buffer; raise ssthresh accordingly.

        With ``ssthresh_from_receiver_buffer`` off this is the no-op that
        constitutes the Chromium-52 bug (Sec. 4.1).
        """
        if not self.config.ssthresh_from_receiver_buffer:
            return
        if not math.isfinite(self._ssthresh):
            # First advertisement: anchor ssthresh at the receiver buffer.
            # Later congestion events lower it; never raise it back here.
            self._ssthresh = float(max(buffer_bytes, self._min_cwnd))

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def on_connection_start(self, now: float) -> None:
        if not self._started:
            self._started = True
            self._set_state(now, self._phase_state())

    def on_packet_sent(self, now: float, size_bytes: int,
                       is_retransmission: bool) -> None:
        if self._prr is not None and self._in_recovery:
            self._prr.on_sent(size_bytes)
        if self._app_limited:
            self._app_limited = False
            self._refresh_state(now)

    def on_ack(self, now: float, acked_bytes: int, *, cwnd_limited: bool) -> None:
        if self._in_rto:
            self._in_rto = False
            self._refresh_state(now)
        if self._in_tlp:
            self._in_tlp = False
            self._refresh_state(now)
        if self._in_recovery:
            if self._prr is not None:
                self._prr.on_ack(acked_bytes)
            return
        if not cwnd_limited:
            # RFC 7661: do not grow a window the application is not using.
            return
        if self._cwnd < self._ssthresh:
            self._slow_start_increase(now, acked_bytes)
        else:
            self._congestion_avoidance_increase(now, acked_bytes)
        self._clamp_cwnd()
        self.trace.log_cwnd(now, int(self._cwnd))
        self._refresh_state(now)

    def on_rtt_sample(self, now: float, rtt: float) -> None:
        if not (self.config.hybrid_slow_start and self.in_slow_start):
            return
        should_exit = self._hss.on_rtt_sample(
            now, rtt,
            baseline_min_rtt=self.rtt.min_rtt(),
            srtt=self.rtt.smoothed_rtt(),
            cwnd_packets=self._cwnd / self.config.mss,
        )
        if should_exit:
            self._ssthresh = self._cwnd
            self.slow_start_exits_by_delay += 1
            self.trace.log(now, "hss_exit", int(self._cwnd))
            self._refresh_state(now)

    def on_congestion_event(self, now: float, in_flight: int) -> None:
        self.loss_events += 1
        cwnd_packets = self._cwnd / self.config.mss
        beta = self.config.scaled_beta()
        if self.config.fast_convergence and cwnd_packets < self._w_max:
            self._w_max = cwnd_packets * (1.0 + beta) / 2.0
        else:
            self._w_max = cwnd_packets
        self._ssthresh = max(self._cwnd * beta, float(self._min_cwnd))
        self._epoch_start = None
        self._in_recovery = True
        if self.config.prr:
            self._prr = ProportionalRateReduction(
                int(self._ssthresh), int(self._cwnd), in_flight, self.config.mss
            )
        else:
            self._prr = None
            self._cwnd = self._ssthresh
        self._set_state(now, CCState.RECOVERY.value)
        self.trace.log_cwnd(now, int(self._cwnd))

    def on_recovery_exit(self, now: float) -> None:
        if not self._in_recovery:
            return
        self._in_recovery = False
        self._prr = None
        self._cwnd = max(self._ssthresh, float(self._min_cwnd))
        self._clamp_cwnd()
        self.trace.log_cwnd(now, int(self._cwnd))
        self._refresh_state(now)

    def on_retransmission_timeout(self, now: float) -> None:
        self.rto_events += 1
        self._ssthresh = max(self._cwnd * self.config.scaled_beta(),
                             float(self._min_cwnd))
        self._cwnd = float(self._min_cwnd)
        self._in_recovery = False
        self._prr = None
        self._in_rto = True
        self._epoch_start = None
        self._w_max = max(self._w_max, self._ssthresh / self.config.mss)
        self._hss.restart()
        self._set_state(now, CCState.RETRANSMISSION_TIMEOUT.value)
        self.trace.log_cwnd(now, int(self._cwnd))

    def on_rto_resolved(self, now: float) -> None:
        if self._in_rto:
            self._in_rto = False
            self._refresh_state(now)

    def on_tail_loss_probe(self, now: float) -> None:
        self._in_tlp = True
        self._set_state(now, CCState.TAIL_LOSS_PROBE.value)

    def on_tlp_resolved(self, now: float) -> None:
        if self._in_tlp:
            self._in_tlp = False
            self._refresh_state(now)

    def on_application_limited(self, now: float) -> None:
        if self._in_recovery or self._in_rto or self._in_tlp:
            return
        if not self._app_limited:
            self._app_limited = True
            self._set_state(now, CCState.APPLICATION_LIMITED.value)

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def _slow_start_increase(self, now: float, acked_bytes: int) -> None:
        self._cwnd += acked_bytes

    def _congestion_avoidance_increase(self, now: float, acked_bytes: int) -> None:
        """Cubic window growth with the TCP-friendly (Reno) floor."""
        mss = self.config.mss
        cwnd_packets = self._cwnd / mss
        if self._epoch_start is None:
            self._epoch_start = now
            if cwnd_packets < self._w_max:
                self._k = ((self._w_max - cwnd_packets) / self.config.cubic_c) ** (1.0 / 3.0)
                self._origin_point = self._w_max
            else:
                self._k = 0.0
                self._origin_point = cwnd_packets
            self._w_est = cwnd_packets
        t = now - self._epoch_start + self.rtt.min_rtt()
        target = self._origin_point + self.config.cubic_c * (t - self._k) ** 3
        # TCP-friendly region (scaled for N emulated connections).
        self._w_est += self.config.reno_alpha() * (acked_bytes / self._cwnd)
        target = max(target, self._w_est)
        # Limit growth to 1.5x per RTT worth of ACKs (Chromium clamp).
        if target > cwnd_packets:
            increase = (target - cwnd_packets) / cwnd_packets
            self._cwnd += min(increase, 0.5) * acked_bytes
        else:
            # Below the cubic curve: still grow slowly (1 packet / 100 acks).
            self._cwnd += acked_bytes / (100.0 * cwnd_packets) * 1.0

    def _clamp_cwnd(self) -> None:
        if self._max_cwnd is not None and self._cwnd > self._max_cwnd:
            self._cwnd = float(self._max_cwnd)
        if self._cwnd < self._min_cwnd:
            self._cwnd = float(self._min_cwnd)

    # ------------------------------------------------------------------
    # state resolution
    # ------------------------------------------------------------------
    def _phase_state(self) -> str:
        if self._max_cwnd is not None and self._cwnd >= self._max_cwnd:
            return CCState.CA_MAXED.value
        if self._cwnd < self._ssthresh:
            return CCState.SLOW_START.value
        return CCState.CONGESTION_AVOIDANCE.value

    def _refresh_state(self, now: float) -> None:
        if self._in_rto:
            self._set_state(now, CCState.RETRANSMISSION_TIMEOUT.value)
        elif self._in_recovery:
            self._set_state(now, CCState.RECOVERY.value)
        elif self._in_tlp:
            self._set_state(now, CCState.TAIL_LOSS_PROBE.value)
        elif self._app_limited:
            self._set_state(now, CCState.APPLICATION_LIMITED.value)
        else:
            self._set_state(now, self._phase_state())

"""Cubic congestion control, parameterised for both QUIC and TCP.

The paper's central protocol comparison is *Cubic vs. Cubic*: "we expect
that QUIC and TCP should be relatively fair to each other because they
both use the Cubic congestion control protocol" (Sec. 5.1) — and yet QUIC
wins, because of how it is *driven* (per-packet unambiguous ACKs, pacing,
N-connection emulation, PRR, TLP, a maximum allowed congestion window).

This class implements RFC-8312-style Cubic with the Chromium extensions
the paper discusses:

* **N-connection emulation** (``num_emulated_connections``): Chromium's
  ``cubic.cc`` scales beta to ``(N - 1 + 0.7) / N`` and the Reno-friendly
  alpha to ``3 N² (1 - beta) / (1 + beta)`` so one QUIC connection behaves
  like N TCP connections (default N=2 in QUIC 34, N=1 in QUIC 37).
* **Maximum allowed congestion window** (``max_cwnd_packets``): the MACW
  of Sec. 4.1/5.4 — 107 packets in the uncalibrated public server, 430 in
  Chrome at paper time, 2000 in QUIC 37.  Hitting it puts the sender in
  the ``CongestionAvoidanceMaxed`` state of Table 3.
* **Hybrid Slow Start** with Chromium's delay-increase exit.
* **PRR** during recovery.
* The **Chromium-52 ssthresh bug** (Sec. 4.1): when
  ``ssthresh_from_receiver_buffer`` is False, ssthresh stays at the small
  ``buggy_initial_ssthresh_packets`` default instead of being raised to
  the receiver-advertised buffer, forcing an early slow-start exit.

State bookkeeping follows Table 3; transitions are logged to the attached
:class:`~repro.core.instrumentation.Trace` for state-machine inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ...core.instrumentation import Trace
from ..rtt import RttEstimator
from .hybrid_slow_start import HybridSlowStart
from .interface import CCState, CongestionController
from .kernels import CubicKernel
from .prr import ProportionalRateReduction


@dataclass
class CubicConfig:
    """Tunables for one Cubic instance.

    The defaults correspond to QUIC version 34 as calibrated in the paper
    (Sec. 4.1); :mod:`repro.quic.config` and :mod:`repro.tcp.config`
    derive protocol- and version-specific variants.
    """

    mss: int = 1350
    #: Initial congestion window, packets (Chromium QUIC default).
    initial_cwnd_packets: int = 32
    #: Maximum allowed congestion window (MACW), packets; None = unlimited.
    max_cwnd_packets: Optional[int] = 430
    #: Minimum window after an RTO, packets.
    min_cwnd_packets: int = 2
    #: Cubic scaling constant C (packets/sec^3) and backoff beta.
    cubic_c: float = 0.4
    beta: float = 0.7
    #: Chromium's N-connection emulation (Sec. 5.1).
    num_emulated_connections: int = 1
    #: Fast convergence halves W_max further on repeated losses.
    fast_convergence: bool = True
    #: Hybrid Slow Start on/off and sensitivity.
    hybrid_slow_start: bool = True
    hss_threshold_divisor: float = 8.0
    #: Proportional rate reduction during recovery.
    prr: bool = True
    #: Pacing gains (bytes/sec = gain * cwnd / srtt); None disables pacing.
    pacing_gain_slow_start: Optional[float] = 2.0
    pacing_gain_ca: Optional[float] = 1.25
    #: Receiver-buffer-driven ssthresh initialisation (the Chromium-52
    #: bug of Sec. 4.1 is modelled by turning this off).
    ssthresh_from_receiver_buffer: bool = True
    buggy_initial_ssthresh_packets: int = 100

    def scaled_beta(self) -> float:
        n = max(self.num_emulated_connections, 1)
        return (n - 1 + self.beta) / n

    def reno_alpha(self) -> float:
        """TCP-friendly additive-increase factor for N emulated connections."""
        n = max(self.num_emulated_connections, 1)
        beta = self.scaled_beta()
        return 3.0 * n * n * (1.0 - beta) / (1.0 + beta)


class CubicCC(CongestionController):
    """Cubic with Hybrid Slow Start, PRR, MACW and N-connection emulation.

    A thin trace-emitting adapter over
    :class:`repro.transport.cc.kernels.CubicKernel`: the kernel owns the
    window arithmetic (slow start, cubic epoch growth, multiplicative
    decrease, MACW clamp); this class adds the connection-facing
    overlays — PRR rationing during recovery, Hybrid Slow Start exits,
    receiver-buffer ssthresh anchoring, TLP/RTO/app-limited state
    resolution and Table 3 trace logging.
    """

    def __init__(self, config: CubicConfig, rtt: RttEstimator,
                 trace: Optional[Trace] = None) -> None:
        super().__init__(trace)
        self.config = config
        self.rtt = rtt
        if config.ssthresh_from_receiver_buffer:
            initial_ssthresh = float("inf")
        else:
            # Chromium-52 bug: ssthresh never raised to the receiver buffer.
            initial_ssthresh = float(
                config.buggy_initial_ssthresh_packets * config.mss)
        self.kernel = CubicKernel(
            mss=config.mss,
            initial_cwnd=config.initial_cwnd_packets * config.mss,
            min_cwnd=config.min_cwnd_packets * config.mss,
            max_cwnd=(config.max_cwnd_packets * config.mss
                      if config.max_cwnd_packets is not None else None),
            ssthresh=initial_ssthresh,
            cubic_c=config.cubic_c,
            beta=config.scaled_beta(),
            reno_alpha=config.reno_alpha(),
            fast_convergence=config.fast_convergence,
            pacing_gain_slow_start=config.pacing_gain_slow_start,
            pacing_gain_ca=config.pacing_gain_ca,
        )
        self._hss = HybridSlowStart(config.hss_threshold_divisor)
        self._prr: Optional[ProportionalRateReduction] = None
        self._in_recovery = False
        self._in_rto = False
        self._in_tlp = False
        self._app_limited = False
        #: Phase when no overlay (recovery/RTO/TLP/app-limited) is active.
        self._started = False
        # Statistics for root-cause analysis.
        self.loss_events = 0
        self.rto_events = 0
        self.slow_start_exits_by_delay = 0
        self.trace.log_state(0.0, CCState.INIT.value)
        self.trace.log_cwnd(0.0, int(self.kernel.cwnd))

    # ------------------------------------------------------------------
    # window & pacing
    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self.kernel.cwnd)

    @property
    def ssthresh(self) -> float:
        return self.kernel.ssthresh

    @property
    def in_slow_start(self) -> bool:
        return (self.kernel.cwnd < self.kernel.ssthresh
                and not self._in_recovery)

    @property
    def in_recovery(self) -> bool:
        return self._in_recovery

    def can_send_bytes(self, in_flight: int) -> int:
        if self._in_recovery and self._prr is not None:
            return self._prr.can_send(in_flight)
        budget = int(self.kernel.cwnd) - in_flight
        return budget if budget > 0 else 0

    def pacing_rate(self) -> Optional[float]:
        # Inlined in_slow_start and clamp: called once per sent packet.
        kernel = self.kernel
        if kernel.cwnd < kernel.ssthresh and not self._in_recovery:
            gain = self.config.pacing_gain_slow_start
        else:
            gain = self.config.pacing_gain_ca
        if gain is None:
            return None
        srtt = self.rtt.smoothed_rtt()
        if srtt < 1e-6:
            srtt = 1e-6
        return gain * kernel.cwnd / srtt

    # ------------------------------------------------------------------
    # receiver buffer (calibration / Chromium-52 bug)
    # ------------------------------------------------------------------
    def on_receiver_buffer(self, buffer_bytes: int) -> None:
        """Receiver advertised its buffer; raise ssthresh accordingly.

        With ``ssthresh_from_receiver_buffer`` off this is the no-op that
        constitutes the Chromium-52 bug (Sec. 4.1).
        """
        if not self.config.ssthresh_from_receiver_buffer:
            return
        if not math.isfinite(self.kernel.ssthresh):
            # First advertisement: anchor ssthresh at the receiver buffer.
            # Later congestion events lower it; never raise it back here.
            self.kernel.ssthresh = float(
                max(buffer_bytes, self.kernel.min_cwnd))

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def on_connection_start(self, now: float) -> None:
        if not self._started:
            self._started = True
            self._set_state(now, self._phase_state())

    def on_packet_sent(self, now: float, size_bytes: int,
                       is_retransmission: bool) -> None:
        if self._prr is not None and self._in_recovery:
            self._prr.on_sent(size_bytes)
        if self._app_limited:
            self._app_limited = False
            self._refresh_state(now)

    def on_ack(self, now: float, acked_bytes: int, *, cwnd_limited: bool) -> None:
        if self._in_rto:
            self._in_rto = False
            self._refresh_state(now)
        if self._in_tlp:
            self._in_tlp = False
            self._refresh_state(now)
        if self._in_recovery:
            if self._prr is not None:
                self._prr.on_ack(acked_bytes)
            return
        if not cwnd_limited:
            # RFC 7661: do not grow a window the application is not using.
            return
        self.kernel.on_ack(acked_bytes, now, self.rtt.smoothed_rtt(),
                           self.rtt.min_rtt())
        self.trace.log_cwnd(now, int(self.kernel.cwnd))
        self._refresh_state(now)

    def on_rtt_sample(self, now: float, rtt: float) -> None:
        if not (self.config.hybrid_slow_start and self.in_slow_start):
            return
        should_exit = self._hss.on_rtt_sample(
            now, rtt,
            baseline_min_rtt=self.rtt.min_rtt(),
            srtt=self.rtt.smoothed_rtt(),
            cwnd_packets=self.kernel.cwnd / self.config.mss,
        )
        if should_exit:
            self.kernel.ssthresh = self.kernel.cwnd
            self.slow_start_exits_by_delay += 1
            self.trace.log(now, "hss_exit", int(self.kernel.cwnd))
            self._refresh_state(now)

    def on_congestion_event(self, now: float, in_flight: int) -> None:
        self.loss_events += 1
        kernel = self.kernel
        prev_cwnd = kernel.cwnd
        kernel.on_loss(now, float(in_flight))
        self._in_recovery = True
        if self.config.prr:
            # PRR rations sending during recovery instead of collapsing
            # the window immediately; restore the kernel's pre-loss cwnd.
            kernel.cwnd = prev_cwnd
            self._prr = ProportionalRateReduction(
                int(kernel.ssthresh), int(prev_cwnd), in_flight,
                self.config.mss
            )
        else:
            self._prr = None
        self._set_state(now, CCState.RECOVERY.value)
        self.trace.log_cwnd(now, int(kernel.cwnd))

    def on_recovery_exit(self, now: float) -> None:
        if not self._in_recovery:
            return
        self._in_recovery = False
        self._prr = None
        self.kernel.on_recovery_exit()
        self.trace.log_cwnd(now, int(self.kernel.cwnd))
        self._refresh_state(now)

    def on_retransmission_timeout(self, now: float) -> None:
        self.rto_events += 1
        self.kernel.on_timeout(now)
        self._in_recovery = False
        self._prr = None
        self._in_rto = True
        self._hss.restart()
        self._set_state(now, CCState.RETRANSMISSION_TIMEOUT.value)
        self.trace.log_cwnd(now, int(self.kernel.cwnd))

    def on_rto_resolved(self, now: float) -> None:
        if self._in_rto:
            self._in_rto = False
            self._refresh_state(now)

    def on_tail_loss_probe(self, now: float) -> None:
        self._in_tlp = True
        self._set_state(now, CCState.TAIL_LOSS_PROBE.value)

    def on_tlp_resolved(self, now: float) -> None:
        if self._in_tlp:
            self._in_tlp = False
            self._refresh_state(now)

    def on_application_limited(self, now: float) -> None:
        if self._in_recovery or self._in_rto or self._in_tlp:
            return
        if not self._app_limited:
            self._app_limited = True
            self._set_state(now, CCState.APPLICATION_LIMITED.value)

    # ------------------------------------------------------------------
    # state resolution
    # ------------------------------------------------------------------
    def _phase_state(self) -> str:
        kernel = self.kernel
        if kernel.max_cwnd is not None and kernel.cwnd >= kernel.max_cwnd:
            return CCState.CA_MAXED.value
        if kernel.cwnd < kernel.ssthresh:
            return CCState.SLOW_START.value
        return CCState.CONGESTION_AVOIDANCE.value

    def _refresh_state(self, now: float) -> None:
        if self._in_rto:
            self._set_state(now, CCState.RETRANSMISSION_TIMEOUT.value)
        elif self._in_recovery:
            self._set_state(now, CCState.RECOVERY.value)
        elif self._in_tlp:
            self._set_state(now, CCState.TAIL_LOSS_PROBE.value)
        elif self._app_limited:
            self._set_state(now, CCState.APPLICATION_LIMITED.value)
        else:
            self._set_state(now, self._phase_state())

"""Hybrid Slow Start (Ha & Rhee; Chromium's implementation).

QUIC exits slow start before the first loss when the minimum RTT observed
in the current round rises noticeably above the connection's minimum —
evidence that the path's queue has started filling.  The paper identifies
this delay-increase exit as the root cause of QUIC's poor page-load times
for *large numbers of small objects* (Sec. 5.2): multiplexing bursts push
up the observed minimum RTT and trigger a premature exit, and short flows
never regain the lost window.

Constants follow Chromium (``hybrid_slow_start.cc``): 8 samples per round,
an exit threshold of ``min_rtt / 8`` clamped to [4 ms, 16 ms], and no exit
below a 16-packet window.
"""

from __future__ import annotations

from typing import Optional


class HybridSlowStart:
    """Delay-increase slow-start exit detector."""

    #: Number of RTT samples examined per round.
    SAMPLES_PER_ROUND = 8
    #: Exit-threshold clamp, seconds.
    DELAY_MIN = 0.004
    DELAY_MAX = 0.016
    #: Minimum congestion window (in packets) for an exit to be allowed.
    LOW_WINDOW_PACKETS = 16

    def __init__(self, threshold_divisor: float = 8.0) -> None:
        if threshold_divisor <= 0:
            raise ValueError("threshold_divisor must be positive")
        self.threshold_divisor = threshold_divisor
        self._round_start: Optional[float] = None
        self._round_min_rtt: Optional[float] = None
        self._samples_this_round = 0
        self.exited = False
        #: Statistics for root-cause analysis.
        self.rounds_observed = 0
        self.exit_time: Optional[float] = None

    def restart(self) -> None:
        """Re-arm after slow start resumes (e.g. after an RTO)."""
        self._round_start = None
        self._round_min_rtt = None
        self._samples_this_round = 0
        self.exited = False
        self.exit_time = None

    def on_rtt_sample(self, now: float, rtt: float, baseline_min_rtt: float,
                      srtt: float, cwnd_packets: float) -> bool:
        """Feed one RTT sample; returns True if slow start should end now.

        ``baseline_min_rtt`` is the connection-lifetime minimum RTT, which
        Chromium compares the current round's minimum against.
        """
        if self.exited:
            return False
        if self._round_start is None or now - self._round_start > srtt:
            # New round: reset the per-round minimum.
            self._round_start = now
            self._round_min_rtt = rtt
            self._samples_this_round = 1
            self.rounds_observed += 1
            return False
        self._samples_this_round += 1
        if self._round_min_rtt is None or rtt < self._round_min_rtt:
            self._round_min_rtt = rtt
        if self._samples_this_round < self.SAMPLES_PER_ROUND:
            return False
        if cwnd_packets < self.LOW_WINDOW_PACKETS:
            return False
        threshold = baseline_min_rtt / self.threshold_divisor
        threshold = min(max(threshold, self.DELAY_MIN), self.DELAY_MAX)
        if self._round_min_rtt > baseline_min_rtt + threshold:
            self.exited = True
            self.exit_time = now
            return True
        return False

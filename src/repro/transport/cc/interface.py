"""Congestion-control interface and the state vocabulary of Table 3.

The paper's root-cause analysis revolves around *states*: its Table 3
lists the states of QUIC's Cubic sender, Fig. 3 shows the inferred state
machines, and Fig. 13 compares dwell times across devices.  Every
congestion controller in this package therefore exposes a ``state``
property drawn from :class:`CCState` (or :class:`BBRState` for BBR) and
logs transitions into a :class:`repro.core.instrumentation.Trace`.
"""

from __future__ import annotations

import abc
import enum
from typing import Optional

from ...core.instrumentation import Trace


class CCState(str, enum.Enum):
    """Congestion-control states of the Cubic sender (paper Table 3)."""

    INIT = "Init"
    SLOW_START = "SlowStart"
    CONGESTION_AVOIDANCE = "CongestionAvoidance"
    CA_MAXED = "CongestionAvoidanceMaxed"
    APPLICATION_LIMITED = "ApplicationLimited"
    RECOVERY = "Recovery"
    TAIL_LOSS_PROBE = "TailLossProbe"
    RETRANSMISSION_TIMEOUT = "RetransmissionTimeout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class BBRState(str, enum.Enum):
    """States of the (experimental) BBR sender, for Fig. 3b."""

    STARTUP = "Startup"
    DRAIN = "Drain"
    PROBE_BW = "ProbeBW"
    PROBE_RTT = "ProbeRTT"
    RECOVERY = "Recovery"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CongestionController(abc.ABC):
    """Abstract congestion controller driven by a transport connection.

    The connection calls the ``on_*`` hooks; the controller answers two
    questions: *how much may be in flight* (:attr:`cwnd`,
    :meth:`can_send_bytes`) and *how fast to pace* (:meth:`pacing_rate`).
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.trace = trace if trace is not None else Trace(enabled=False)
        self._state: str = CCState.INIT.value

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state name (a Table 3 / BBR state string)."""
        return self._state

    def _set_state(self, now: float, state: str) -> None:
        if state != self._state:
            self._state = state
            self.trace.log_state(now, state)

    # -- window ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def cwnd(self) -> int:
        """Congestion window in bytes."""

    @abc.abstractmethod
    def can_send_bytes(self, in_flight: int) -> int:
        """How many further bytes may be committed to the network now."""

    @abc.abstractmethod
    def pacing_rate(self) -> Optional[float]:
        """Pacing rate in bytes/second, or None for unpaced senders."""

    # -- event hooks ------------------------------------------------------
    @abc.abstractmethod
    def on_connection_start(self, now: float) -> None:
        """The handshake completed; data transfer is about to begin."""

    @abc.abstractmethod
    def on_packet_sent(self, now: float, size_bytes: int,
                       is_retransmission: bool) -> None:
        """A (re)transmission entered the network."""

    @abc.abstractmethod
    def on_ack(self, now: float, acked_bytes: int, *, cwnd_limited: bool) -> None:
        """Previously-unacked bytes were newly acknowledged."""

    @abc.abstractmethod
    def on_rtt_sample(self, now: float, rtt: float) -> None:
        """A fresh RTT sample arrived (Hybrid Slow Start hook)."""

    @abc.abstractmethod
    def on_congestion_event(self, now: float, in_flight: int) -> None:
        """Loss detected; begin a recovery episode (at most one per window)."""

    @abc.abstractmethod
    def on_recovery_exit(self, now: float) -> None:
        """All data outstanding at loss time has been repaired."""

    @abc.abstractmethod
    def on_retransmission_timeout(self, now: float) -> None:
        """The RTO fired: collapse the window and restart slow start."""

    @abc.abstractmethod
    def on_rto_resolved(self, now: float) -> None:
        """First ACK after an RTO arrived; leave the RTO state."""

    def on_tail_loss_probe(self, now: float) -> None:
        """A TLP fired (QUIC only; default no-op for controllers without TLP)."""

    def on_tlp_resolved(self, now: float) -> None:
        """An ACK arrived after a TLP; leave the TLP state."""

    @abc.abstractmethod
    def on_application_limited(self, now: float) -> None:
        """The sender has window available but nothing to send."""

    # -- recovery status ---------------------------------------------------
    @property
    @abc.abstractmethod
    def in_recovery(self) -> bool:
        """True while a loss-recovery episode is active."""

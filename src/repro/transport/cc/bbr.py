"""Simplified BBR congestion control (for Fig. 3b and ablations).

The paper instruments QUIC's *experimental* BBR implementation purely to
demonstrate that the state-machine-inference approach generalises (Sec.
5.1: "this instrumentation took approximately 5 hours"), and notes that at
the time BBR was "not yet performing as well as Cubic" in Google's tests.

This is a faithful-in-shape, simplified BBR v1: windowed-max bandwidth
filter, windowed-min RTT, the four canonical states (Startup, Drain,
ProbeBW with an 8-phase gain cycle, ProbeRTT) plus a Recovery overlay.
It exposes the same :class:`CongestionController` interface as Cubic, so
any experiment can swap it in.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ...core.instrumentation import Trace
from ..rtt import RttEstimator
from .interface import BBRState, CongestionController

#: Startup/drain gains: 2/ln(2).
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
#: ProbeBW pacing-gain cycle.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: Bandwidth filter window, in round trips (approximated by time below).
BW_WINDOW_ROUNDS = 10
#: Min-RTT validity window and ProbeRTT dwell.
MIN_RTT_WINDOW = 10.0
PROBE_RTT_DURATION = 0.2


class BBR(CongestionController):
    """Bottleneck Bandwidth and RTT, v1-style, simplified."""

    def __init__(self, rtt: RttEstimator, mss: int = 1350,
                 trace: Optional[Trace] = None) -> None:
        super().__init__(trace)
        self.rtt = rtt
        self.mss = mss
        self._mode = BBRState.STARTUP
        self._in_recovery = False
        self._pacing_gain = STARTUP_GAIN
        self._cwnd_gain = STARTUP_GAIN
        #: (time, bytes/sec) max filter over a sliding window.
        self._bw_samples: Deque[Tuple[float, float]] = deque()
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_start = 0.0
        self._probe_rtt_done_at: Optional[float] = None
        self._min_rtt_stamp = 0.0
        self._delivered_bytes = 0
        self._last_ack_time: Optional[float] = None
        self._cwnd = 32 * mss
        self._min_cwnd = 4 * mss
        self._drain_entered_at = 0.0
        self._set_state(0.0, BBRState.STARTUP.value)

    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self._cwnd)

    @property
    def in_recovery(self) -> bool:
        return self._in_recovery

    def can_send_bytes(self, in_flight: int) -> int:
        return max(int(self._cwnd) - in_flight, 0)

    def pacing_rate(self) -> Optional[float]:
        bw = self._bandwidth()
        if bw <= 0:
            # No estimate yet: pace off the initial window.
            return STARTUP_GAIN * self._cwnd / max(self.rtt.smoothed_rtt(), 1e-6)
        return self._pacing_gain * bw

    def _bandwidth(self) -> float:
        return max((bw for _, bw in self._bw_samples), default=0.0)

    # ------------------------------------------------------------------
    def on_connection_start(self, now: float) -> None:
        self._min_rtt_stamp = now

    def on_packet_sent(self, now: float, size_bytes: int,
                       is_retransmission: bool) -> None:
        pass

    def on_ack(self, now: float, acked_bytes: int, *, cwnd_limited: bool) -> None:
        if self._in_recovery:
            self._in_recovery = False
            self._set_state(now, self._mode.value)
        # Delivery-rate sample: bytes delivered / inter-ACK time.
        if self._last_ack_time is not None and now > self._last_ack_time:
            rate = acked_bytes / (now - self._last_ack_time)
            self._push_bw_sample(now, rate)
        self._last_ack_time = now
        self._delivered_bytes += acked_bytes
        self._update_mode(now)
        self._update_cwnd(acked_bytes)
        self.trace.log_cwnd(now, int(self._cwnd))

    def on_rtt_sample(self, now: float, rtt: float) -> None:
        if rtt <= self.rtt.min_rtt() + 1e-9:
            self._min_rtt_stamp = now

    def on_congestion_event(self, now: float, in_flight: int) -> None:
        # BBR v1 reacts to loss only by entering a shallow recovery:
        # cap cwnd at in-flight (packet conservation) for one round.
        self._in_recovery = True
        self._cwnd = max(float(in_flight), float(self._min_cwnd))
        self._set_state(now, BBRState.RECOVERY.value)

    def on_recovery_exit(self, now: float) -> None:
        if self._in_recovery:
            self._in_recovery = False
            self._set_state(now, self._mode.value)

    def on_retransmission_timeout(self, now: float) -> None:
        self._cwnd = float(self._min_cwnd)
        self._in_recovery = True
        self._set_state(now, BBRState.RECOVERY.value)

    def on_rto_resolved(self, now: float) -> None:
        self.on_recovery_exit(now)

    def on_application_limited(self, now: float) -> None:
        # BBR ignores app-limited periods for state purposes; bandwidth
        # samples taken while app-limited are simply not max-filtered
        # higher, which the windowed max already handles.
        pass

    # ------------------------------------------------------------------
    def _push_bw_sample(self, now: float, rate: float) -> None:
        window = BW_WINDOW_ROUNDS * max(self.rtt.smoothed_rtt(), 1e-3)
        self._bw_samples.append((now, rate))
        while self._bw_samples and now - self._bw_samples[0][0] > window:
            self._bw_samples.popleft()

    def _update_mode(self, now: float) -> None:
        if self._mode is BBRState.STARTUP:
            self._check_full_pipe()
            if self._full_bw_rounds >= 3:
                self._enter(now, BBRState.DRAIN, DRAIN_GAIN, 2.0)
                self._drain_entered_at = now
        elif self._mode is BBRState.DRAIN:
            # The startup queue drains within about one smoothed RTT of
            # pacing below the bottleneck rate.
            if now - self._drain_entered_at >= 1.5 * self.rtt.smoothed_rtt():
                self._enter_probe_bw(now)
        elif self._mode is BBRState.PROBE_BW:
            cycle_len = max(self.rtt.min_rtt(), 1e-3)
            if now - self._cycle_start > cycle_len:
                self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
                self._pacing_gain = PROBE_BW_GAINS[self._cycle_index]
                self._cycle_start = now
            if now - self._min_rtt_stamp > MIN_RTT_WINDOW:
                self._enter(now, BBRState.PROBE_RTT, 1.0, 1.0)
                self._probe_rtt_done_at = now + PROBE_RTT_DURATION
        elif self._mode is BBRState.PROBE_RTT:
            if self._probe_rtt_done_at is not None and now >= self._probe_rtt_done_at:
                self._min_rtt_stamp = now
                if self._full_bw_rounds >= 3:
                    self._enter_probe_bw(now)
                else:
                    self._enter(now, BBRState.STARTUP, STARTUP_GAIN, STARTUP_GAIN)

    def _check_full_pipe(self) -> None:
        bw = self._bandwidth()
        if bw > self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_rounds = 0
        elif bw > 0:
            self._full_bw_rounds += 1

    def _enter(self, now: float, mode: BBRState, pacing_gain: float,
               cwnd_gain: float) -> None:
        self._mode = mode
        self._pacing_gain = pacing_gain
        self._cwnd_gain = cwnd_gain
        if not self._in_recovery:
            self._set_state(now, mode.value)

    def _enter_probe_bw(self, now: float) -> None:
        self._enter(now, BBRState.PROBE_BW, PROBE_BW_GAINS[0], 2.0)
        self._cycle_index = 0
        self._cycle_start = now

    def _update_cwnd(self, acked_bytes: int) -> None:
        if self._mode is BBRState.PROBE_RTT:
            self._cwnd = float(max(self._min_cwnd, 4 * self.mss))
            return
        bdp = self._bandwidth() * self.rtt.min_rtt()
        target = self._cwnd_gain * bdp
        if target <= 0:
            target = float(self._cwnd + acked_bytes)
        if self._cwnd < target:
            self._cwnd = min(self._cwnd + acked_bytes, target + acked_bytes)
        else:
            self._cwnd = max(target, float(self._min_cwnd))
        if self._cwnd < self._min_cwnd:
            self._cwnd = float(self._min_cwnd)

"""Simplified BBR congestion control (for Fig. 3b and ablations).

The paper instruments QUIC's *experimental* BBR implementation purely to
demonstrate that the state-machine-inference approach generalises (Sec.
5.1: "this instrumentation took approximately 5 hours"), and notes that at
the time BBR was "not yet performing as well as Cubic" in Google's tests.

This is a faithful-in-shape, simplified BBR v1: windowed-max bandwidth
filter, windowed-min RTT, the four canonical states (Startup, Drain,
ProbeBW with an 8-phase gain cycle, ProbeRTT) plus a Recovery overlay.
It exposes the same :class:`CongestionController` interface as Cubic, so
any experiment can swap it in.
"""

from __future__ import annotations

from typing import Optional

from ...core.instrumentation import Trace
from ..rtt import RttEstimator
from .interface import BBRState, CongestionController
from .kernels import (
    BBR_BW_WINDOW_ROUNDS as BW_WINDOW_ROUNDS,
    BBR_DRAIN_GAIN as DRAIN_GAIN,
    BBR_MIN_RTT_WINDOW as MIN_RTT_WINDOW,
    BBR_PROBE_BW_GAINS as PROBE_BW_GAINS,
    BBR_PROBE_RTT_DURATION as PROBE_RTT_DURATION,
    BBR_STARTUP_GAIN as STARTUP_GAIN,
    BBRKernel,
)


class BBR(CongestionController):
    """Bottleneck Bandwidth and RTT, v1-style, simplified.

    A thin trace-emitting adapter over
    :class:`repro.transport.cc.kernels.BBRKernel`: the kernel owns the
    bandwidth filter, the Startup/Drain/ProbeBW/ProbeRTT machine and the
    BDP-tracking cwnd; this class adds the recovery overlay and logs the
    Fig. 3b state transitions into the attached trace.
    """

    def __init__(self, rtt: RttEstimator, mss: int = 1350,
                 trace: Optional[Trace] = None) -> None:
        super().__init__(trace)
        self.rtt = rtt
        self.mss = mss
        self.kernel = BBRKernel(mss=mss)
        self._in_recovery = False
        self._delivered_bytes = 0
        self._set_state(0.0, BBRState.STARTUP.value)

    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> int:
        return int(self.kernel.cwnd)

    @property
    def in_recovery(self) -> bool:
        return self._in_recovery

    def can_send_bytes(self, in_flight: int) -> int:
        return max(int(self.kernel.cwnd) - in_flight, 0)

    def pacing_rate(self) -> Optional[float]:
        return self.kernel.pacing_rate(self.rtt.smoothed_rtt())

    def _bandwidth(self) -> float:
        return self.kernel.bandwidth()

    # ------------------------------------------------------------------
    def on_connection_start(self, now: float) -> None:
        self.kernel.min_rtt_stamp = now

    def on_packet_sent(self, now: float, size_bytes: int,
                       is_retransmission: bool) -> None:
        pass

    def on_ack(self, now: float, acked_bytes: int, *, cwnd_limited: bool) -> None:
        kernel = self.kernel
        if self._in_recovery:
            self._in_recovery = False
            self._set_state(now, kernel.mode)
        prev_mode = kernel.mode
        kernel.on_ack(acked_bytes, now, self.rtt.smoothed_rtt(),
                      self.rtt.min_rtt())
        self._delivered_bytes += acked_bytes
        if kernel.mode != prev_mode and not self._in_recovery:
            self._set_state(now, kernel.mode)
        self.trace.log_cwnd(now, int(kernel.cwnd))

    def on_rtt_sample(self, now: float, rtt: float) -> None:
        self.kernel.on_rtt_sample(now, rtt, self.rtt.min_rtt())

    def on_congestion_event(self, now: float, in_flight: int) -> None:
        # BBR v1 reacts to loss only by entering a shallow recovery:
        # cap cwnd at in-flight (packet conservation) for one round.
        self._in_recovery = True
        self.kernel.on_loss(now, float(in_flight))
        self._set_state(now, BBRState.RECOVERY.value)

    def on_recovery_exit(self, now: float) -> None:
        if self._in_recovery:
            self._in_recovery = False
            self._set_state(now, self.kernel.mode)

    def on_retransmission_timeout(self, now: float) -> None:
        self.kernel.on_timeout(now)
        self._in_recovery = True
        self._set_state(now, BBRState.RECOVERY.value)

    def on_rto_resolved(self, now: float) -> None:
        self.on_recovery_exit(now)

    def on_application_limited(self, now: float) -> None:
        # BBR ignores app-limited periods for state purposes; bandwidth
        # samples taken while app-limited are simply not max-filtered
        # higher, which the windowed max already handles.
        pass

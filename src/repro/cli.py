"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro compare --rate 10 --size-kb 200 --runs 10
    python -m repro heatmap --rates 5,10,50 --sizes-kb 5,100,1000 --runs 5
    python -m repro spec --file examples/specs/desktop_plt.json --jobs 4
    python -m repro spec --file examples/specs/desktop_plt.json --cache
    python -m repro store stats
    python -m repro serve --store sweeps/ --port 8737
    python -m repro worker --file grid.json --url http://lab:8737 --workers 8
    python -m repro report --from-store http://lab:8737 --live
    python -m repro fairness --tcp-flows 2 --duration 30
    python -m repro bulk --protocol quic --size-mb 10 --rate 100 --loss 1
    python -m repro video --quality hd2160 --runs 3
    python -m repro statemachine --out fsm.dot
    python -m repro bench --quick
    python -m repro versions

Every command builds the same simulated testbed the benchmarks use, so
CLI results match ``pytest benchmarks/`` cell for cell.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .core.executor import ProtocolSpec
from .core.runner import (
    build_plt_heatmap,
    compare_page_load,
    run_bulk_transfer,
    run_fairness,
    run_page_load,
)
from .core.statemachine import infer
from .devices import DEVICE_PROFILES
from .http import page, single_object_page
from .netem import AQM_NAMES, emulated
from .quic import KNOWN_VERSIONS, quic_config
from .video import QUALITIES, measure_video_qoe


def _floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _scenario(args: argparse.Namespace):
    return emulated(
        args.rate,
        extra_delay_ms=getattr(args, "delay_ms", 0.0),
        loss_pct=getattr(args, "loss", 0.0),
        jitter_ms=getattr(args, "jitter_ms", 0.0),
    )


def _workload(args: argparse.Namespace):
    if getattr(args, "objects", None):
        return page(args.objects, args.size_kb * 1024)
    return single_object_page(args.size_kb * 1024)


def _cache(args: argparse.Namespace):
    """Build the RunCache behind ``--cache [PATH]`` / ``--store-url``.

    Resolution goes through :func:`repro.store.resolve_store` — the
    same precedence (explicit path > ``$REPRO_STORE`` > default) every
    other entry point uses, with a clean error when ``--backend``
    conflicts with an existing store.  ``--store-url`` is the fabric
    spelling: the same cache, served by a ``repro serve`` process.
    """
    location = getattr(args, "cache", None)
    store_url = getattr(args, "store_url", None)
    if store_url is not None:
        if location is not None:
            raise SystemExit(
                "error: pass --cache or --store-url, not both (they name "
                "the same results store)")
        location = store_url
    if location is None:
        return None
    from .store import RunCache, resolve_store

    try:
        # "" (bare --cache) means the default path.
        store = resolve_store(location or None,
                              backend=getattr(args, "backend", None))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    return RunCache(store)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_compare(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    workload = _workload(args)
    device = DEVICE_PROFILES[args.device]
    cache = _cache(args)
    cell = compare_page_load(scenario, workload, runs=args.runs,
                             device=device, jobs=args.jobs, store=cache)
    print(cell.describe())
    if cache is not None:
        print(cache.describe_session())
    return 0


def cmd_heatmap(args: argparse.Namespace) -> int:
    scenarios = [emulated(rate, loss_pct=args.loss,
                          extra_delay_ms=args.delay_ms)
                 for rate in _floats(args.rates)]
    pages = [single_object_page(kb * 1024) for kb in _ints(args.sizes_kb)]
    cache = _cache(args)
    heatmap = build_plt_heatmap(
        "QUIC vs TCP page load time", scenarios, pages, runs=args.runs,
        device=DEVICE_PROFILES[args.device], jobs=args.jobs, store=cache,
    )
    print(heatmap.render())
    if cache is not None:
        print(cache.describe_session())
    return 0


def cmd_fairness(args: argparse.Namespace) -> int:
    result = run_fairness(n_quic=args.quic_flows, n_tcp=args.tcp_flows,
                          duration=args.duration, seed=args.seed)
    print(f"bottleneck: {result.scenario.describe()}, "
          f"{args.duration:.0f}s window")
    for flow in sorted(result.average_mbps):
        print(f"  {flow:<8} {result.average_mbps[flow]:6.2f} Mbps")
    print(f"QUIC share of delivered bytes: {result.quic_share() * 100:.0f}%")
    return 0


def cmd_bulk(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    protocol = ProtocolSpec.of(args.protocol)
    if args.protocol == "quic" and args.nack_threshold is not None:
        cfg = quic_config(34)
        cfg.nack_threshold = args.nack_threshold
        protocol = ProtocolSpec("quic", cfg)
    result = run_bulk_transfer(
        scenario, int(args.size_mb * 1024 * 1024), protocol,
        seed=args.seed,
    )
    print(f"{args.protocol}: {result.elapsed:.3f}s, "
          f"{result.throughput_mbps:.2f} Mbps, "
          f"losses={result.losses}, spurious={result.false_losses}")
    dwell = result.server_trace.dwell_fractions()
    for state, fraction in sorted(dwell.items(), key=lambda kv: -kv[1]):
        print(f"  {state:<26} {fraction * 100:5.1f}% of time")
    return 0


def cmd_video(args: argparse.Namespace) -> int:
    scenario = emulated(args.rate, loss_pct=args.loss)
    for protocol in ("quic", "tcp"):
        agg = measure_video_qoe(args.quality, protocol, runs=args.runs,
                                scenario=scenario)
        print(agg.row())
    return 0


def cmd_statemachine(args: argparse.Namespace) -> int:
    traces = []
    environments = [
        (emulated(10.0), single_object_page(1024 * 1024)),
        (emulated(100.0, loss_pct=1.0), single_object_page(2 * 1024 * 1024)),
        (emulated(5.0), page(10, 50 * 1024)),
    ]
    for scenario, workload in environments:
        out = run_page_load(scenario, workload, "quic", seed=args.seed,
                            trace=True)
        traces.append(out.server_trace)
    model = infer(traces)
    print(model.summary())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(model.to_dot("QUIC congestion control"))
        print(f"\nDOT written to {args.out}")
    return 0


def cmd_spec(args: argparse.Namespace) -> int:
    from .core.experiment import ExperimentSpec, run_experiment

    with open(args.file) as handle:
        spec = ExperimentSpec.from_json(handle.read())
    print(f"running spec {spec.name!r}: {len(spec.scenarios)} scenarios x "
          f"{len(spec.workloads)} workloads x {spec.runs} runs"
          + (f" on {args.jobs or 'all'} workers" if args.jobs != 1 else ""))
    cache = _cache(args)
    result = run_experiment(
        spec, seed_base=args.seed, jobs=args.jobs, store=cache,
        progress=lambda key, plts: print(f"  done {'/'.join(key)}"),
    )
    print()
    print(result.heatmap().render())
    if cache is not None:
        print(cache.describe_session())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(result.to_json())
        print(f"\nfull samples written to {args.out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .core.report import (
        build_report,
        build_store_report,
        missing_experiments,
    )

    if args.from_store is not None:
        from .store import StoreNotFoundError, resolve_store

        try:
            found = resolve_store(args.from_store or None, must_exist=True)
        except StoreNotFoundError as exc:
            print(f"{exc} — run a sweep with --cache first")
            return 0
        with found as store:
            text = build_store_report(store, live=args.live)
        if args.out:
            Path(args.out).write_text(text + "\n")
            print(f"report written to {args.out}")
        else:
            print(text)
        return 0
    if args.live:
        raise SystemExit("error: --live only applies to --from-store "
                         "(file-based reports are always final)")

    results_dir = Path(args.results)
    text = build_report(results_dir)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    missing = missing_experiments(results_dir)
    if missing:
        print(f"\nnote: {len(missing)} experiments not yet run "
              f"({', '.join(missing[:5])}...)"
              if len(missing) > 5 else
              f"\nnote: not yet run: {', '.join(missing)}")
    return 0


def _resolve_key(store, prefix: str) -> str:
    """Expand a (possibly abbreviated) run key to the full stored key."""
    matches = [key for key in store.keys() if key.startswith(prefix)]
    if not matches:
        raise SystemExit(f"no stored run matches key {prefix!r}")
    if len(matches) > 1:
        raise SystemExit(
            f"key {prefix!r} is ambiguous ({len(matches)} matches); "
            f"give more digits")
    return matches[0]


def cmd_store(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time
    from pathlib import Path as _Path

    from .store import (
        StoreNotFoundError,
        achievable_fingerprints,
        merge_into,
        record_to_dict,
        resolve_store,
        resolve_store_path,
        subsystem_fingerprints,
    )

    # Read-only commands on a store that was never created get a
    # friendly note instead of a traceback (or a spurious empty store).
    read_only = args.store_command in ("ls", "show", "stats", "gc", "export",
                                       "fsck")
    try:
        opened = resolve_store(args.store, backend=args.backend,
                               must_exist=read_only)
    except StoreNotFoundError:
        print(f"no results store at {resolve_store_path(args.store)} — "
              f"nothing to {args.store_command}; run a sweep with --cache "
              "to create one")
        return 0
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    with opened as store:
        if args.store_command == "ls":
            if len(store) == 0:
                print(f"results store at {store.path} is empty")
                return 0
            for key, created, fingerprint, label in store.rows():
                stamp = _time.strftime("%Y-%m-%d %H:%M:%S",
                                       _time.localtime(created))
                print(f"{key[:16]}  {stamp}  {label}")
            print(f"{len(store)} stored run(s) in {store.path} "
                  f"[{store.kind}]")
        elif args.store_command == "show":
            key = _resolve_key(store, args.key)
            record = store.get(key)
            print(_json.dumps({"key": key, **record_to_dict(record)},
                              indent=2, sort_keys=True))
        elif args.store_command == "export":
            count = store.export_jsonl(args.file)
            print(f"exported {count} run(s) to {args.file}")
        elif args.store_command == "import":
            count = store.import_jsonl(args.file)
            print(f"imported {count} run(s) into {store.path}")
        elif args.store_command == "sync":
            try:
                imported, skipped = merge_into(store, args.source)
            except FileNotFoundError as exc:
                raise SystemExit(str(exc))
            print(f"synced from {args.source}: {imported} imported, "
                  f"{skipped} already present; {len(store)} total in "
                  f"{store.path}")
        elif args.store_command == "gc":
            if len(store) == 0:
                print(f"results store at {store.path} is empty — "
                      "nothing to collect")
                return 0
            dropped = store.gc(args.older_than * 86400.0,
                               dry_run=args.dry_run)
            if args.dry_run:
                print(f"would drop {dropped} run(s) older than "
                      f"{args.older_than:g} day(s); {len(store)} stored "
                      "(dry run, nothing removed)")
            else:
                print(f"dropped {dropped} run(s) older than "
                      f"{args.older_than:g} day(s); {len(store)} remain")
        elif args.store_command == "fsck":
            from .store.fsck import fsck
            try:
                report = fsck(store, repair=args.repair)
            except ValueError as exc:
                raise SystemExit(f"error: {exc}")
            print(report.summary())
            for issue in report.checksum_failures + report.key_mismatches:
                shown = issue.key[:16] if issue.key else "(unreadable)"
                print(f"  {issue.kind}: {shown} in {issue.location}"
                      + (f" — {issue.detail}" if issue.detail else ""))
            if not report.clean and not args.repair:
                print("re-run with --repair to quarantine corrupt rows")
            return 0 if report.clean else 1
        elif args.store_command == "stats":
            counters = store.counters()
            fresh_prints = achievable_fingerprints()
            by_fingerprint = store.fingerprints()
            fresh = sum(n for f, n in by_fingerprint.items()
                        if f in fresh_prints)
            print(f"store:   {store.path} [{store.kind}]")
            print(f"runs:    {len(store)} stored "
                  f"({fresh} reusable by the current code)")
            hits = counters.get("hits", 0)
            misses = counters.get("misses", 0)
            total = hits + misses
            rate = (100.0 * hits / total) if total else 0.0
            print(f"lookups: {hits} hits / {misses} misses "
                  f"({rate:.0f}% lifetime hit rate)")
            print(f"writes:  {counters.get('writes', 0)}")
            stale = {f: n for f, n in by_fingerprint.items()
                     if f not in fresh_prints}
            if stale:
                print(f"stale:   {sum(stale.values())} run(s) from "
                      f"{len(stale)} older code fingerprint(s) "
                      f"(reclaim with 'repro store gc')")
            shard_stats = getattr(store, "stats", None)
            if callable(shard_stats):
                info = shard_stats()
                print(f"shards:  {info['shards']} shard(s), "
                      f"{info['ledger_lines']} ledger line(s) "
                      f"({info['dead_lines']} dead)")
                if info["torn_lines"]:
                    print(f"torn:    {info['torn_lines']} torn line(s) "
                          f"across {len(info['torn_by_shard'])} shard(s) — "
                          f"run 'repro store fsck --repair' to quarantine")
            quarantined = counters.get("quarantined", 0)
            if quarantined:
                print(f"quarantined: {quarantined} row(s) moved aside by "
                      f"'store fsck --repair'")
            subsystems = subsystem_fingerprints()
            print("code:    " + ", ".join(
                f"{name}={subsystems[name][:8]}"
                for name in sorted(subsystems)))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .fabric import StoreServer
    from .store import KEY_SCHEMA_VERSION, is_store_url, resolve_store

    if is_store_url(args.store or ""):
        raise SystemExit(
            "error: repro serve exposes a *local* store over HTTP; point "
            "--store at a file or directory, not another server's URL")
    try:
        store = resolve_store(args.store or None, backend=args.backend)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        server = StoreServer(store, host=args.host, port=args.port,
                             verbose=args.verbose)
    except OSError as exc:
        # Most commonly EADDRINUSE: another server (or an old one) is
        # already bound there — one line, not a traceback.
        raise SystemExit(
            f"error: cannot serve on {args.host}:{args.port} "
            f"({getattr(exc, 'strerror', None) or exc}); is another "
            f"'repro serve' already running there? pick a different "
            f"--port (0 = any free port)")
    print(f"serving {store.kind} store {store.path} at {server.url} "
          f"(key schema v{KEY_SCHEMA_VERSION}, {len(store)} stored "
          f"run(s)); Ctrl-C to stop", flush=True)
    server.serve_forever()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .core.experiment import ExperimentSpec, experiment_requests
    from .fabric import run_fabric_sweep

    with open(args.file) as handle:
        spec = ExperimentSpec.from_json(handle.read())
    requests = [request
                for _key, cell in experiment_requests(spec,
                                                      seed_base=args.seed)
                for request in cell]
    print(f"sweeping spec {spec.name!r}: {len(requests)} runs against "
          f"{args.url} on {args.workers} worker process(es)", flush=True)
    summary = run_fabric_sweep(
        requests, args.url, workers=args.workers,
        sync_every=args.sync_every, workdir=args.workdir)
    print(f"done: {summary['hits']} already stored, "
          f"{summary['completed']} executed, {summary['failed']} failed "
          f"({summary['retries']} retries)")
    return 0


def cmd_manyflow(args: argparse.Namespace) -> int:
    from .core.executor import run_requests
    from .core.manyflow import (ManyflowConfig, manyflow_requests,
                                manyflow_scenario)
    from .transport.cc import KERNEL_NAMES

    ccs = [cc.strip() for cc in args.cc.split(",") if cc.strip()]
    for cc in ccs:
        if cc not in KERNEL_NAMES:
            raise SystemExit(f"error: unknown CC kernel {cc!r} "
                             f"(choose from {', '.join(KERNEL_NAMES)})")
    configs = [ManyflowConfig(flows=args.flows,
                              arrival_rate=args.arrival_rate,
                              tcp_share=args.tcp_share, aqm=args.aqm,
                              duration=args.duration, cc=cc)
               for cc in ccs]
    scenario = manyflow_scenario(rate_mbps=args.rate,
                                 rtt=args.rtt_ms / 1000.0,
                                 loss_rate=args.loss / 100.0)
    seeds = tuple(range(args.seed, args.seed + args.runs))
    requests = [request for config in configs
                for request in manyflow_requests(config, scenario=scenario,
                                                 seeds=seeds)]
    cache = _cache(args)
    labels = ", ".join(config.label for config in configs)
    print(f"{labels}: {len(seeds)} run(s) x {args.flows} flows "
          f"over {scenario.name}")
    records = run_requests(requests, jobs=args.jobs, store=cache)
    for record in records:
        seed = record.request.seed
        cc_tag = (f"{record.request.manyflow.cc} " if len(ccs) > 1 else "")
        if not record.complete and record.failure is not None:
            print(f"  {cc_tag}seed {seed}: {record.failure}")
            continue
        m = record.metrics
        flag = " (cached)" if record.cached else ""
        print(f"  {cc_tag}seed {seed}: "
              f"{int(m['flows_completed'])}/{int(m['flows'])} flows, "
              f"jain={m['jain_index']:.3f} "
              f"quic_share={m['quic_share']:.3f} "
              f"plt_p50={m['plt_p50']:.3f}s "
              f"p99={m['plt_p99']:.3f}s{flag}")
    if cache is not None:
        print(cache.describe_session())
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .core.models import (
        fit_records,
        oracle_requests,
        render_model_fit_table,
    )

    if args.from_store is not None:
        from .core.aggregate import iter_records
        from .store import StoreNotFoundError, resolve_store

        try:
            found = resolve_store(args.from_store or None, must_exist=True)
        except StoreNotFoundError as exc:
            print(f"{exc} — run `repro validate` without --from-store "
                  "(or a manyflow sweep with --cache) first")
            return 1
        with found as store:
            fit = fit_records(iter_records(store))
    else:
        from .core.executor import run_requests

        requests = oracle_requests(seeds=tuple(range(args.runs)))
        cache = _cache(args)
        print(f"oracle grid: {len(requests)} steady-state manyflow run(s)",
              flush=True)
        records = run_requests(requests, jobs=args.jobs, store=cache)
        failures = [r for r in records if not r.complete and r.failure]
        for record in failures:
            request = record.request
            print(f"  {request.manyflow.label} seed {request.seed} on "
                  f"{request.scenario.name}: {record.failure}")
        fit = fit_records(records)
        if cache is not None:
            print(cache.describe_session())
    cells = fit.cells()
    if not cells:
        print("no model-fit cells: the store holds no completed "
              "homogeneous manyflow runs with a rate_p50 metric")
        return 1
    print(render_model_fit_table(cells, args.tolerance))
    gated = [cell for cell in cells if cell.gated]
    divergent = [cell for cell in gated
                 if not cell.within(args.tolerance)]
    print()
    print(f"{len(gated) - len(divergent)}/{len(gated)} gated cell(s) "
          f"within tolerance ({len(cells) - len(gated)} informational)")
    if divergent:
        for cell in divergent:
            print(f"  DIVERGENT: {cell.cc}/{cell.proto} at "
                  f"loss={cell.loss_rate:.2%}: obs/model="
                  f"{cell.ratio:.2f}")
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .core.bench import (profile_manyflow, profile_plt, run_benchmarks,
                             write_payload)

    if args.profile is not None:
        if args.profile_workload == "manyflow":
            profile_manyflow(top=args.profile)
        else:
            profile_plt(top=args.profile)
        return 0

    if args.quick:
        args.events = min(args.events, 50_000)
        args.packets = min(args.packets, 8_000)
        args.repeat = 1

    baseline = None
    if args.baseline is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)

    payload = run_benchmarks(events=args.events, packets=args.packets,
                             repeat=args.repeat, baseline=baseline)
    current = payload["current"]
    print(f"events/sec:      {current['events_per_sec']:>12,.0f}")
    print(f"packets/sec:     {current['packets_per_sec']:>12,.0f}")
    print(f"PLT pair wall:   {current['plt_wall_seconds']:>12.4f} s "
          f"(quic={current['plt_quic']:.4f}s tcp={current['plt_tcp']:.4f}s)")
    for metric, factor in payload.get("speedup", {}).items():
        print(f"speedup {metric}: {factor:.2f}x")
    if args.out:
        write_payload(payload, args.out)
        print(f"written to {args.out}")
    return 0


def cmd_versions(args: argparse.Namespace) -> int:
    print("QUIC versions released during the study window:")
    for version in KNOWN_VERSIONS:
        cfg = quic_config(version)
        print(f"  QUIC {version:>2}: MACW={cfg.cc.max_cwnd_packets} packets, "
              f"N-emulation={cfg.cc.num_emulated_connections}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Taking a Long Look at QUIC'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def jobs_arg(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for independent runs "
                            "(0 = all cores, default 1 = serial)")

    def cache_arg(p):
        p.add_argument("--cache", nargs="?", const="", default=None,
                       metavar="PATH",
                       help="serve already-computed runs from a results "
                            "store and persist new ones; PATH defaults to "
                            "$REPRO_STORE or .repro-store.sqlite")
        p.add_argument("--backend", choices=("auto", "sqlite", "shards"),
                       default=None,
                       help="force the --cache store backend (default: "
                            "auto — infer from the path / what exists "
                            "there)")
        p.add_argument("--store-url", default=None, metavar="URL",
                       help="use a fabric store server (repro serve) as "
                            "the results store — the remote equivalent of "
                            "--cache")

    def common_network(p):
        p.add_argument("--rate", type=float, default=10.0,
                       help="bottleneck rate, Mbps (default 10)")
        p.add_argument("--loss", type=float, default=0.0,
                       help="added loss, percent")
        p.add_argument("--delay-ms", type=float, default=0.0,
                       help="added round-trip delay, ms")
        p.add_argument("--jitter-ms", type=float, default=0.0,
                       help="netem jitter, ms (causes reordering)")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("compare", help="QUIC vs TCP on one workload")
    common_network(p)
    p.add_argument("--size-kb", type=int, default=200)
    p.add_argument("--objects", type=int, default=None,
                   help="object count (size-kb becomes per-object size)")
    p.add_argument("--runs", type=int, default=10)
    p.add_argument("--device", choices=sorted(DEVICE_PROFILES),
                   default="desktop")
    jobs_arg(p)
    cache_arg(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("heatmap", help="a Fig. 6-style grid")
    p.add_argument("--rates", default="5,10,50,100",
                   help="comma-separated Mbps rows")
    p.add_argument("--sizes-kb", default="5,100,1000",
                   help="comma-separated object sizes (KB)")
    p.add_argument("--loss", type=float, default=0.0)
    p.add_argument("--delay-ms", type=float, default=0.0)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--device", choices=sorted(DEVICE_PROFILES),
                   default="desktop")
    jobs_arg(p)
    cache_arg(p)
    p.set_defaults(func=cmd_heatmap)

    p = sub.add_parser("fairness", help="Table 4: shared bottleneck")
    p.add_argument("--quic-flows", type=int, default=1)
    p.add_argument("--tcp-flows", type=int, default=1)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fairness)

    p = sub.add_parser("bulk", help="instrumented bulk transfer")
    common_network(p)
    p.add_argument("--protocol", choices=("quic", "tcp"), default="quic")
    p.add_argument("--size-mb", type=float, default=10.0)
    p.add_argument("--nack-threshold", type=int, default=None,
                   help="override QUIC's reordering threshold (Fig. 10)")
    p.set_defaults(func=cmd_bulk)

    p = sub.add_parser("video", help="Table 6: streaming QoE")
    p.add_argument("--quality", choices=QUALITIES, default="hd720")
    p.add_argument("--rate", type=float, default=100.0)
    p.add_argument("--loss", type=float, default=1.0)
    p.add_argument("--runs", type=int, default=3)
    p.set_defaults(func=cmd_video)

    p = sub.add_parser("statemachine", help="Fig. 3: infer the CC FSM")
    p.add_argument("--out", default=None, help="write Graphviz DOT here")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_statemachine)

    p = sub.add_parser("spec", help="run a declarative experiment file")
    p.add_argument("--file", required=True, help="JSON ExperimentSpec")
    p.add_argument("--out", default=None, help="write result JSON here")
    p.add_argument("--seed", type=int, default=0)
    jobs_arg(p)
    cache_arg(p)
    p.set_defaults(func=cmd_spec)

    p = sub.add_parser("report", help="collate results into Markdown")
    p.add_argument("--results", default="benchmarks/results",
                   help="results directory for the file-based path")
    p.add_argument("--from-store", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="collate directly from a results store instead of "
                        "result files; PATH defaults to $REPRO_STORE or "
                        ".repro-store.sqlite")
    p.add_argument("--live", action="store_true",
                   help="with --from-store: render mid-sweep — label the "
                        "partial cells instead of presenting the grid as "
                        "final")
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("store", help="inspect and maintain the results store")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="store location (default: $REPRO_STORE or "
                        ".repro-store.sqlite); a .sqlite/.db path or "
                        "existing file opens sqlite, anything else a "
                        "sharded JSONL directory")
    p.add_argument("--backend", choices=("auto", "sqlite", "shards"),
                   default="auto",
                   help="force the backend instead of inferring it from "
                        "the path (default: auto)")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    store_sub.add_parser("ls", help="list stored runs")
    sp = store_sub.add_parser("show", help="dump one stored run as JSON")
    sp.add_argument("key", help="run key (an unambiguous prefix suffices)")
    sp = store_sub.add_parser("export", help="write the store as JSONL")
    sp.add_argument("file")
    sp = store_sub.add_parser("import", help="merge a JSONL export")
    sp.add_argument("file")
    sp = store_sub.add_parser(
        "sync", help="merge another store (sqlite file, shard directory, "
                     "or JSONL export), skipping keys already present")
    sp.add_argument("source", help="path to the store or export to pull")
    sp = store_sub.add_parser("gc", help="drop old rows")
    sp.add_argument("--older-than", type=float, required=True, metavar="DAYS",
                    help="drop runs recorded more than DAYS days ago")
    sp.add_argument("--dry-run", action="store_true",
                    help="only report what would be dropped")
    store_sub.add_parser("stats", help="row counts and hit/miss counters")
    sp = store_sub.add_parser(
        "fsck", help="verify row checksums and re-derive run keys "
                     "(exit 1 when anything is wrong)")
    sp.add_argument("--repair", action="store_true",
                    help="quarantine corrupt rows to a sidecar file and "
                         "reconcile the counter ledger")
    p.set_defaults(func=cmd_store)

    p = sub.add_parser(
        "serve", help="serve a results store to fabric workers over HTTP")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="store to expose (default: $REPRO_STORE or "
                        ".repro-store.sqlite)")
    p.add_argument("--backend", choices=("auto", "sqlite", "shards"),
                   default="auto",
                   help="force the backing store's kind (default: auto)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1; use 0.0.0.0 to "
                        "accept workers from other hosts)")
    p.add_argument("--port", type=int, default=8737,
                   help="TCP port (default 8737; 0 picks a free one)")
    p.add_argument("--verbose", action="store_true",
                   help="log every request to stderr")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker", help="execute a spec's missing runs against a fabric "
                       "server (repro serve)")
    p.add_argument("--file", required=True, help="JSON ExperimentSpec")
    p.add_argument("--url", required=True,
                   help="the fabric server, e.g. http://lab-server:8737")
    p.add_argument("--workers", type=int, default=2,
                   help="local worker processes to shard the misses "
                        "across (default 2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sync-every", type=int, default=32,
                   help="results a worker batches before uploading "
                        "(default 32)")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep the workers' local write-ahead stores here "
                        "(default: a temporary directory)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "manyflow",
        help="thousand-flow fair-share sweep (Tab. 4 generalised)")
    p.add_argument("--flows", type=int, default=1000,
                   help="concurrent flows at the bottleneck (default 1000)")
    p.add_argument("--arrival-rate", type=float, default=50.0,
                   help="mean flow arrivals per second (Poisson)")
    p.add_argument("--tcp-share", type=float, default=0.5,
                   help="fraction of flows using TCP (rest QUIC)")
    p.add_argument("--aqm", choices=AQM_NAMES, default="droptail",
                   help="bottleneck queue discipline")
    p.add_argument("--cc", default="reno", metavar="KERNELS",
                   help="comma-separated CC kernel axis (reno, cubic, "
                        "bbr); each kernel becomes its own sweep cell "
                        "(default: reno)")
    p.add_argument("--duration", type=float, default=300.0,
                   help="simulated seconds (cap; runs end at completion)")
    p.add_argument("--rate", type=float, default=100.0,
                   help="bottleneck rate, Mbps (default 100)")
    p.add_argument("--rtt-ms", type=float, default=40.0,
                   help="base round-trip time, ms")
    p.add_argument("--loss", type=float, default=0.0,
                   help="random loss, percent")
    p.add_argument("--seed", type=int, default=0,
                   help="first seed; --runs consecutive seeds execute")
    p.add_argument("--runs", type=int, default=1)
    jobs_arg(p)
    cache_arg(p)
    p.set_defaults(func=cmd_manyflow)

    p = sub.add_parser(
        "validate",
        help="check sweep cells against analytical CC models")
    p.add_argument("--from-store", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="fit existing store records instead of running "
                        "the oracle grid; PATH defaults to $REPRO_STORE "
                        "or .repro-store.sqlite")
    p.add_argument("--tolerance", type=float, default=0.6,
                   help="accepted observed/model band as a fraction "
                        "(default 0.6: within 1.6x either way)")
    p.add_argument("--runs", type=int, default=1,
                   help="seeds per oracle cell when running the grid "
                        "(default 1)")
    jobs_arg(p)
    cache_arg(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("bench", help="hot-path microbenchmarks / profiler")
    p.add_argument("--events", type=int, default=200_000,
                   help="events for the event-loop microbenchmark")
    p.add_argument("--packets", type=int, default=30_000,
                   help="packets for the link microbenchmark")
    p.add_argument("--repeat", type=int, default=3,
                   help="samples per benchmark (best is kept)")
    p.add_argument("--quick", action="store_true",
                   help="small sizes, one sample — fast but too noisy "
                        "to gate on; for local iteration only")
    p.add_argument("--baseline", default=None, metavar="JSON",
                   help="previous BENCH_sim.json to compute speedups against")
    p.add_argument("--out", default=None, metavar="JSON",
                   help="write the payload here (default: print only)")
    p.add_argument("--profile", type=int, default=None, metavar="N",
                   help="cProfile instead of benchmarking: print a "
                        "subsystem-partition summary and the top N "
                        "cumulative rows")
    p.add_argument("--profile-workload", choices=("plt", "manyflow"),
                   default="plt",
                   help="what --profile runs: the canonical PLT pair or "
                        "a 300-flow manyflow engine (default: plt)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("versions", help="Sec. 5.4: version configurations")
    p.set_defaults(func=cmd_versions)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:
        # Fabric failures (server down, key-schema mismatch) already
        # carry an actionable message; print it instead of a traceback.
        from .fabric.client import FabricError

        if isinstance(exc, FabricError):
            print(f"error: {exc}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

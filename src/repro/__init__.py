"""repro — "Taking a Long Look at QUIC" (IMC 2017), rebuilt in Python.

A from-scratch reproduction of the paper's evaluation framework and every
substrate it depends on: a discrete-event ``tc``/``netem``-style network
emulator, GQUIC (versions 25-37) and TCP(+TLS, HTTP/2 framing) transport
implementations sharing one Cubic congestion controller, device CPU
models, a video QoE player, split-connection proxies, Synoptic-style
state-machine inference, and a statistically rigorous comparison harness.

Quick start::

    from repro.core import compare_page_load
    from repro.http import single_object_page
    from repro.netem import emulated

    cell = compare_page_load(emulated(10.0), single_object_page(200 * 1024),
                             runs=10)
    print(cell.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction index.
"""

__version__ = "1.0.0"

from . import core, devices, http, netem, proxy, quic, tcp, transport, video

__all__ = [
    "core",
    "devices",
    "http",
    "netem",
    "proxy",
    "quic",
    "tcp",
    "transport",
    "video",
    "__version__",
]

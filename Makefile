# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test test-report bench bench-smoke bench-report bench-full examples clean results

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-report:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Fast end-to-end check: a tiny spec grid on 2 workers.
bench-smoke:
	$(PYTHON) -m repro spec --file examples/specs/smoke.json --jobs 2

# Paper-scale: >=10 rounds per cell and full workload grids.
bench-full:
	REPRO_BENCH_RUNS=10 REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

results:
	@ls -1 benchmarks/results/

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +

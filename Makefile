# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test test-report bench bench-smoke bench-report bench-full perf-gate examples check clean distclean results

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-report:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Fast end-to-end check: a tiny spec grid on 2 workers.
bench-smoke:
	$(PYTHON) -m repro spec --file examples/specs/smoke.json --jobs 2

# Perf-regression gate: re-measure the hot-path benchmarks at full size
# (small --quick sizes are biased low and would trip the gate) and
# compare host-normalised rates against the committed BENCH_sim.json;
# exits non-zero on a >25% regression in events/sec or packets/sec, or
# on any change in the fixed-seed simulated outcomes.  The executor,
# store and pipeline payloads are then re-measured and gated on their
# correctness contracts (byte-identical results; warm hit rate exactly
# 1.0; no record payload on the parent pipe).  Each gate appends a
# per-commit trend line to benchmarks/results/bench_history.jsonl.
HISTORY = benchmarks/results/bench_history.jsonl
perf-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/sim_hotpath.py --repeat 3 \
		--out /tmp/BENCH_sim.candidate.json
	$(PYTHON) scripts/bench_diff.py BENCH_sim.json \
		/tmp/BENCH_sim.candidate.json --history $(HISTORY)
	cp BENCH_executor.json /tmp/BENCH_executor.baseline.json
	cp BENCH_store.json /tmp/BENCH_store.baseline.json
	PYTHONPATH=src $(PYTHON) benchmarks/executor_scaling.py --jobs 2
	$(PYTHON) scripts/bench_diff.py /tmp/BENCH_executor.baseline.json \
		BENCH_executor.json --history $(HISTORY)
	PYTHONPATH=src $(PYTHON) benchmarks/store_hit_rate.py --runs 2
	$(PYTHON) scripts/bench_diff.py /tmp/BENCH_store.baseline.json \
		BENCH_store.json --history $(HISTORY)
	cp BENCH_pipeline.json /tmp/BENCH_pipeline.baseline.json
	PYTHONPATH=src $(PYTHON) benchmarks/executor_pipeline.py --cells 2000
	$(PYTHON) scripts/bench_diff.py /tmp/BENCH_pipeline.baseline.json \
		BENCH_pipeline.json --history $(HISTORY)
	cp BENCH_fabric.json /tmp/BENCH_fabric.baseline.json
	PYTHONPATH=src $(PYTHON) benchmarks/fabric_sweep.py --cells 2000
	$(PYTHON) scripts/bench_diff.py /tmp/BENCH_fabric.baseline.json \
		BENCH_fabric.json --history $(HISTORY)
	PYTHONPATH=src $(PYTHON) benchmarks/sim_manyflow.py \
		--out /tmp/BENCH_manyflow.candidate.json
	$(PYTHON) scripts/bench_diff.py BENCH_manyflow.json \
		/tmp/BENCH_manyflow.candidate.json --history $(HISTORY)
	PYTHONPATH=src $(PYTHON) benchmarks/model_fit.py \
		--out /tmp/BENCH_models.candidate.json
	$(PYTHON) scripts/bench_diff.py BENCH_models.json \
		/tmp/BENCH_models.candidate.json --history $(HISTORY)
	cp BENCH_chaos.json /tmp/BENCH_chaos.baseline.json
	PYTHONPATH=src $(PYTHON) scripts/chaos_sweep.py --cells 600
	$(PYTHON) scripts/bench_diff.py /tmp/BENCH_chaos.baseline.json \
		BENCH_chaos.json --history $(HISTORY)
	git checkout -- BENCH_executor.json 2>/dev/null || true
	git checkout -- BENCH_store.json 2>/dev/null || true
	git checkout -- BENCH_pipeline.json 2>/dev/null || true
	git checkout -- BENCH_fabric.json 2>/dev/null || true
	git checkout -- BENCH_chaos.json 2>/dev/null || true

# Paper-scale: >=10 rounds per cell and full workload grids.
bench-full:
	REPRO_BENCH_RUNS=10 REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

results:
	@ls -1 benchmarks/results/

# What CI runs: the tier-1 suite plus the store round-trip smoke (runs a
# tiny spec grid twice and asserts the second pass is 100% cache hits
# with byte-identical metrics; exits non-zero otherwise).
check:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) benchmarks/store_hit_rate.py --runs 1

# clean removes caches and scratch output only; benchmarks/results/ is
# git-tracked (committed benchmark summaries) and must survive a clean.
clean:
	rm -rf .pytest_cache .hypothesis test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +

# distclean additionally drops regenerable local state: the committed-
# results directory (restorable with git checkout), local result stores
# and the machine-readable benchmark outputs.
distclean: clean
	rm -rf benchmarks/results .repro-store.sqlite BENCH_executor.json BENCH_store.json BENCH_pipeline.json BENCH_fabric.json BENCH_chaos.json
